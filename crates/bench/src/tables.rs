//! Plain-text table rendering shared by the figure/table binaries.

/// Renders a table with a header row, a separator and aligned columns.
///
/// # Example
///
/// ```
/// use lat_bench::tables::render;
///
/// let t = render(
///     &["platform", "speedup"],
///     &[vec!["CPU".into(), "1.0".into()], vec!["FPGA".into(), "80.2".into()]],
/// );
/// assert!(t.contains("platform"));
/// assert!(t.contains("80.2"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a speedup factor as the paper prints them (`80.2x`).
pub fn speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render(&["a", "long-header"], &[vec!["xxxxx".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        // Second column starts at the same offset in header and body.
        let h_off = lines[0].find("long-header").unwrap();
        let b_off = lines[2].find('1').unwrap();
        assert_eq!(h_off, b_off);
    }

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(80.23), "80.2x");
        assert_eq!(speedup(1073.0), "1073x");
        assert_eq!(speedup(2.61), "2.6x");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.802), "80.2%");
    }
}
