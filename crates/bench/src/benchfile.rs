//! `BENCH_*.json` (schema 2) read-migrate-append helpers, shared by every
//! bin that records a perf-trajectory entry.
//!
//! Schema 2 is an append-style document:
//!
//! ```json
//! { "schema": 2, "bench": "fleet", "entries": [ { "bench": "...", ... } ] }
//! ```
//!
//! [`read_entries`] loads the prior entries (wrapping a legacy schema-1
//! single-record file as the first entry) and applies in-place
//! migrations; [`write()`] re-seals the document. Entries deliberately
//! carry wall-clock fields — they are the one non-deterministic part of
//! the repo's committed artifacts.

use serde::json::{self, Value};

/// Annotation recorded in place of `speedup` when the host has a single
/// core — serial vs parallel wall times compare time-slicing overhead,
/// not parallel speedup.
pub const SPEEDUP_NOTE: &str =
    "host_parallelism=1: workers time-slice one core; speedup not measurable";

/// Loads the entry array from a schema-2 bench file, migrating legacy
/// shapes: a schema-1 single-record document becomes the first entry,
/// and any `parallel-sweep` entry recorded on a single-core host has its
/// meaningless sub-1.0 `speedup` replaced by [`SPEEDUP_NOTE`]. Returns
/// an empty vector when the file is missing or unparsable.
pub fn read_entries(path: &str) -> Vec<Value> {
    let mut entries: Vec<Value> = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| json::parse(&s).ok())
    {
        Some(Value::Obj(mut top)) => {
            if let Some(Value::Arr(prior)) = top.remove("entries") {
                prior
            } else {
                top.remove("schema");
                vec![Value::Obj(top)]
            }
        }
        _ => Vec::new(),
    };
    for entry in &mut entries {
        let Value::Obj(e) = entry else { continue };
        let single_core = matches!(e.get("host_parallelism"), Some(Value::UInt(1)));
        if single_core && e.remove("speedup").is_some() {
            e.insert("speedup_note".into(), Value::Str(SPEEDUP_NOTE.into()));
        }
    }
    entries
}

/// Writes a schema-2 bench document with the given entry array.
///
/// # Errors
///
/// Propagates the filesystem error when the file cannot be written.
pub fn write(path: &str, bench: &str, entries: Vec<Value>) -> std::io::Result<()> {
    let doc = Value::obj([
        ("schema".into(), Value::UInt(2)),
        ("bench".into(), Value::Str(bench.into())),
        ("entries".into(), Value::Arr(entries)),
    ]);
    std::fs::write(path, doc.to_pretty_string(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrates_schema1_and_scrubs_single_core_speedup() {
        let legacy = Value::obj([
            ("bench".into(), Value::Str("fleet".into())),
            ("wall_s".into(), Value::Float(0.01)),
            ("schema".into(), Value::UInt(1)),
        ]);
        let dir = std::env::temp_dir().join("lat-benchfile-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        std::fs::write(path, legacy.to_pretty_string(2)).expect("seed file");
        let entries = read_entries(path);
        assert_eq!(entries.len(), 1, "schema-1 record wraps into entries");

        let sweep = Value::obj([
            ("bench".into(), Value::Str("parallel-sweep".into())),
            ("host_parallelism".into(), Value::UInt(1)),
            ("speedup".into(), Value::Float(0.78)),
        ]);
        write(path, "test", vec![sweep]).expect("write schema-2");
        let migrated = read_entries(path);
        let Value::Obj(e) = &migrated[0] else {
            panic!("entry is an object")
        };
        assert!(
            e.get("speedup").is_none(),
            "single-core speedup must be scrubbed"
        );
        assert_eq!(
            e.get("speedup_note"),
            Some(&Value::Str(SPEEDUP_NOTE.into()))
        );
        // Multi-core entries keep their speedup.
        let ok = Value::obj([
            ("bench".into(), Value::Str("parallel-sweep".into())),
            ("host_parallelism".into(), Value::UInt(8)),
            ("speedup".into(), Value::Float(3.2)),
        ]);
        write(path, "test", vec![ok]).expect("write schema-2");
        let kept = read_entries(path);
        let Value::Obj(e) = &kept[0] else {
            panic!("entry is an object")
        };
        assert!(e.get("speedup").is_some());
        let _ = std::fs::remove_file(path);
    }
}
