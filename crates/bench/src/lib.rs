//! # lat-bench
//!
//! Harnesses regenerating every table and figure of the paper's evaluation
//! (§5). Each `fig*`/`table*` binary prints the corresponding figure's data
//! series or table rows; the Criterion benches in `benches/` measure the
//! software kernels themselves.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig1_breakdown` | Fig. 1(c) encoder time breakdown |
//! | `fig4_fusion` | Fig. 4 loop-fusion cycle comparison |
//! | `fig5_schedule` | Fig. 5 length-aware timing diagram |
//! | `fig6_accuracy` | Fig. 6 accuracy vs Top-k |
//! | `fig7a_end2end` | Fig. 7(a) end-to-end cross-platform speedup |
//! | `fig7b_attention` | Fig. 7(b) attention cross-platform speedup |
//! | `table1_models` | Table 1 model & dataset statistics |
//! | `table2_energy` | Table 2 throughput & energy efficiency |
//! | `ablate_fleet` | multi-shard fleet serving: scaling + dispatch policies |

#![warn(missing_docs)]

pub mod benchfile;
pub mod scenarios;
pub mod tables;
