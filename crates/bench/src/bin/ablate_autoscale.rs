//! Ablation: autoscaling on the fleet engine under a diurnal (4× swing)
//! load curve, serving the paper's traffic mix.
//!
//! The fixed-size fleet ablations answer "how many shards"; this one
//! answers "when". Three claims, asserted while the tables print:
//!
//! 1. **Cost** — under a 4× diurnal swing, reactive autoscaling attains
//!    the fixed-max fleet's p95 latency within
//!    [`AUTOSCALE_P95_TOLERANCE`] while spending at most
//!    [`AUTOSCALE_COST_MARGIN`] of its shard-seconds.
//! 2. **SLO** — reactive autoscaling beats the fixed-min fleet's SLO
//!    attainment (fixed-min melts at the diurnal peak).
//! 3. **Pinning** — a pinned autoscaler at min == max shards reproduces
//!    `simulate_fleet` bit-for-bit (the same invariant
//!    `tests/autoscale_props.rs` property-tests).
//!
//! Deterministic under `HARNESS_SEED`.

use lat_bench::scenarios::{
    autoscale_mix, AUTOSCALE_COOLDOWN_S, AUTOSCALE_COST_MARGIN, AUTOSCALE_DOWN_DEPTH,
    AUTOSCALE_EVAL_INTERVAL_S, AUTOSCALE_MAX_SHARDS, AUTOSCALE_MEAN_RATE, AUTOSCALE_MIN_SHARDS,
    AUTOSCALE_P95_TOLERANCE, AUTOSCALE_PERIOD_S, AUTOSCALE_REQUESTS, AUTOSCALE_SLO_LATENCY_S,
    AUTOSCALE_SWING, AUTOSCALE_UP_DEPTH, AUTOSCALE_WARMUP_S, HARNESS_SEED,
};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::autoscale::{
    simulate_autoscale, AutoscaleConfig, AutoscaleReport, RetirePolicy, ScalePolicy, SchedulePhase,
};
use lat_hwsim::fleet::{
    homogeneous_fleet, nonstationary_poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
    RateProfile,
};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::datasets::LengthSampler;

fn design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

/// Per-shard sustainable rate on the mix — used only to seed the
/// time-of-day table (the reactive/utilization policies need no such
/// oracle).
const SHARD_CAPACITY_SEQ_S: f64 = 68.0;

fn base_cfg(policy: ScalePolicy, min: usize, initial: usize, bounds: Vec<f64>) -> AutoscaleConfig {
    AutoscaleConfig {
        min_shards: min,
        initial_shards: initial,
        policy,
        retire: RetirePolicy::Drain,
        eval_interval_s: AUTOSCALE_EVAL_INTERVAL_S,
        warmup_s: AUTOSCALE_WARMUP_S,
        cooldown_s: AUTOSCALE_COOLDOWN_S,
        slo_latency_s: AUTOSCALE_SLO_LATENCY_S,
        phase_bounds_s: bounds,
    }
}

fn row(name: &str, r: &AutoscaleReport) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.1}", r.shard_seconds),
        format!("{:.2}", r.mean_active_shards),
        format!("{}", r.peak_active_shards),
        format!("{:.0}", r.fleet.p50_latency_s * 1e3),
        format!("{:.0}", r.fleet.p95_latency_s * 1e3),
        tables::pct(r.slo_attainment),
        format!("{}", r.scale_events.len()),
    ]
}

fn main() {
    let profile = RateProfile::Diurnal {
        mean_rate: AUTOSCALE_MEAN_RATE,
        swing: AUTOSCALE_SWING,
        period_s: AUTOSCALE_PERIOD_S,
    };
    let trace =
        nonstationary_poisson_trace(&autoscale_mix(), &profile, AUTOSCALE_REQUESTS, HARNESS_SEED);
    let horizon = trace.last().expect("non-empty trace").arrival_s;
    // Reporting phases: half-period buckets (high half / low half of each
    // diurnal cycle).
    let half = AUTOSCALE_PERIOD_S / 2.0;
    let bounds: Vec<f64> = (1..)
        .map(|i| i as f64 * half)
        .take_while(|b| *b < horizon)
        .collect();
    let fleet = homogeneous_fleet(&design(99), AUTOSCALE_MAX_SHARDS);
    let batcher = BatcherConfig::default();
    let run = |shards: &[AcceleratorDesign], cfg: &AutoscaleConfig| {
        simulate_autoscale(
            shards,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher,
            cfg,
        )
    };

    let pool = Scheduler::from_env();
    println!(
        "Ablation — autoscaling (BERT-base, {} prompts, {} requests,\n\
         diurnal {:.0}×{:.0} seq/s swing, period {:.0} s, SLO {:.0} ms, seed {HARNESS_SEED:#x},\n\
         {} workers)\n",
        autoscale_mix().label(),
        AUTOSCALE_REQUESTS,
        AUTOSCALE_SWING,
        AUTOSCALE_MEAN_RATE,
        AUTOSCALE_PERIOD_S,
        AUTOSCALE_SLO_LATENCY_S * 1e3,
        pool.parallelism(),
    );

    // ── The policy grid: every run is an independent, seed-deterministic
    // cell — declare them all, fan them across the pool, then read the
    // results back by index.
    // Time-of-day table: quarter-period entries sized from the known rate
    // curve (the oracle policy the feedback policies are measured
    // against).
    let quarter = AUTOSCALE_PERIOD_S / 4.0;
    let table: Vec<SchedulePhase> = (0..)
        .map(|i| i as f64 * quarter)
        .take_while(|s| *s < horizon)
        .map(|start| {
            let mid = start + quarter / 2.0;
            let need = (profile.rate_at(mid) / SHARD_CAPACITY_SEQ_S).ceil() as usize;
            SchedulePhase {
                start_s: start.max(1e-9), // table entries must be ordered; 0 is "initial"
                shards: need.clamp(AUTOSCALE_MIN_SHARDS, AUTOSCALE_MAX_SHARDS),
            }
        })
        .collect();
    // (shard-slice length, config) fully describes a run.
    let mut jobs: Vec<(usize, AutoscaleConfig)> = vec![
        (
            AUTOSCALE_MAX_SHARDS,
            base_cfg(
                ScalePolicy::Pinned,
                AUTOSCALE_MAX_SHARDS,
                AUTOSCALE_MAX_SHARDS,
                bounds.clone(),
            ),
        ),
        (
            AUTOSCALE_MIN_SHARDS,
            base_cfg(
                ScalePolicy::Pinned,
                AUTOSCALE_MIN_SHARDS,
                AUTOSCALE_MIN_SHARDS,
                bounds.clone(),
            ),
        ),
        (
            AUTOSCALE_MAX_SHARDS,
            base_cfg(
                ScalePolicy::Reactive {
                    scale_up_depth: AUTOSCALE_UP_DEPTH,
                    scale_down_depth: AUTOSCALE_DOWN_DEPTH,
                },
                AUTOSCALE_MIN_SHARDS,
                AUTOSCALE_MIN_SHARDS,
                bounds.clone(),
            ),
        ),
        (
            AUTOSCALE_MAX_SHARDS,
            base_cfg(
                ScalePolicy::UtilizationTarget {
                    low: 0.35,
                    high: 0.8,
                },
                AUTOSCALE_MIN_SHARDS,
                AUTOSCALE_MIN_SHARDS,
                bounds.clone(),
            ),
        ),
        (
            AUTOSCALE_MAX_SHARDS,
            base_cfg(
                ScalePolicy::Scheduled(table),
                AUTOSCALE_MIN_SHARDS,
                2,
                bounds.clone(),
            ),
        ),
    ];
    // Cost × p95 frontier points ride in the same fan-out.
    for k in 1..=AUTOSCALE_MAX_SHARDS {
        jobs.push((k, base_cfg(ScalePolicy::Pinned, k, k, bounds.clone())));
    }
    let mut results = pool
        .par_map_indexed(&jobs, |(k, cfg)| run(&fleet[..*k], cfg))
        .into_iter();
    let mut next = || results.next().expect("one result per job");
    let (pinned, fixed_min, reactive, utilization, scheduled) =
        (next(), next(), next(), next(), next());
    let frontier_fixed: Vec<AutoscaleReport> = (1..=AUTOSCALE_MAX_SHARDS).map(|_| next()).collect();

    // ── Claim 3: the pinned min==max autoscaler IS simulate_fleet ───────
    let fixed_fleet = simulate_fleet(
        &fleet,
        &trace,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        &batcher,
    );
    assert_eq!(
        pinned.fleet, fixed_fleet,
        "pinned min==max autoscaling drifted from simulate_fleet"
    );
    let fixed_max = pinned;

    let rows = vec![
        row(&format!("fixed-min ({AUTOSCALE_MIN_SHARDS})"), &fixed_min),
        row(&format!("fixed-max ({AUTOSCALE_MAX_SHARDS})"), &fixed_max),
        row("reactive", &reactive),
        row("utilization", &utilization),
        row("scheduled", &scheduled),
    ];
    println!("Policy comparison (JSQ dispatch, drain-on-retire, warm-up {AUTOSCALE_WARMUP_S} s)");
    println!(
        "{}",
        tables::render(
            &[
                "policy",
                "shard-sec",
                "mean shards",
                "peak",
                "p50 (ms)",
                "p95 (ms)",
                "SLO att.",
                "events",
            ],
            &rows,
        )
    );

    // ── Headline claims ─────────────────────────────────────────────────
    assert!(
        reactive.fleet.p95_latency_s <= fixed_max.fleet.p95_latency_s * AUTOSCALE_P95_TOLERANCE,
        "reactive p95 {} !<= {} × fixed-max p95 {}",
        reactive.fleet.p95_latency_s,
        AUTOSCALE_P95_TOLERANCE,
        fixed_max.fleet.p95_latency_s
    );
    assert!(
        reactive.shard_seconds <= fixed_max.shard_seconds * AUTOSCALE_COST_MARGIN,
        "reactive shard-seconds {} !<= {} × fixed-max {}",
        reactive.shard_seconds,
        AUTOSCALE_COST_MARGIN,
        fixed_max.shard_seconds
    );
    assert!(
        reactive.slo_attainment > fixed_min.slo_attainment,
        "reactive SLO {} !> fixed-min {}",
        reactive.slo_attainment,
        fixed_min.slo_attainment
    );

    // ── SLO attainment per diurnal half-cycle ───────────────────────────
    let phase_rows: Vec<Vec<String>> = fixed_min
        .phases
        .iter()
        .zip(&fixed_max.phases)
        .zip(&reactive.phases)
        .map(|((lo, hi), re)| {
            let end = if lo.end_s.is_finite() {
                format!("{:.0}", lo.end_s)
            } else {
                "∞".into()
            };
            vec![
                format!("[{:.0}, {end}) s", lo.start_s),
                format!("{}", lo.requests),
                tables::pct(lo.slo_attainment),
                tables::pct(hi.slo_attainment),
                tables::pct(re.slo_attainment),
            ]
        })
        .collect();
    println!("SLO attainment per half-period phase");
    println!(
        "{}",
        tables::render(
            &["phase", "requests", "fixed-min", "fixed-max", "reactive"],
            &phase_rows,
        )
    );

    // ── Cost × p95 frontier ─────────────────────────────────────────────
    let mut frontier = Vec::new();
    for (k, r) in frontier_fixed.into_iter().enumerate() {
        frontier.push((format!("fixed-{}", k + 1), r));
    }
    frontier.push(("reactive".into(), reactive));
    frontier.push(("utilization".into(), utilization));
    frontier.push(("scheduled".into(), scheduled));
    let frontier_rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                format!("{:.1}", r.shard_seconds),
                format!("{:.0}", r.fleet.p95_latency_s * 1e3),
                tables::pct(r.slo_attainment),
            ]
        })
        .collect();
    println!("Cost × p95 frontier");
    println!(
        "{}",
        tables::render(
            &["config", "shard-sec", "p95 (ms)", "SLO att."],
            &frontier_rows,
        )
    );
    println!(
        "(pinned≡simulate_fleet, p95-within-{AUTOSCALE_P95_TOLERANCE}×-at-≤{:.0}%-cost, and\n\
         SLO-above-fixed-min asserted above; scaling to the diurnal swing buys the\n\
         fixed-max fleet's tail latency at roughly the mean-demand cost)",
        AUTOSCALE_COST_MARGIN * 100.0
    );
}
