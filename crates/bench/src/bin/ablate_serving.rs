//! Ablation: online serving latency under load — the deployment-level
//! payoff of the co-design. Sweeps the request arrival rate and compares
//! tail latencies between the length-aware schedule and pad-to-max on the
//! same chip.

use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::serving::{simulate_serving, ServingConfig};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::datasets::DatasetSpec;

fn main() {
    println!("Ablation — online serving (BERT-base / RTE, Poisson arrivals, batch cap 16)\n");
    let design = AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        68,
    );
    let dataset = DatasetSpec::rte();

    let mut rows = Vec::new();
    for rate in [10.0f64, 30.0, 60.0, 90.0, 120.0] {
        let cfg = ServingConfig {
            arrival_rate: rate,
            num_requests: 300,
            ..ServingConfig::default()
        };
        let adaptive = simulate_serving(
            &design,
            &dataset,
            SchedulingPolicy::LengthAware,
            &cfg,
            0x5E12,
        );
        let padded = simulate_serving(&design, &dataset, SchedulingPolicy::PadToMax, &cfg, 0x5E12);
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{:.1}", adaptive.mean_batch_size),
            format!("{:.1}", adaptive.p50_latency_s * 1e3),
            format!("{:.1}", adaptive.p99_latency_s * 1e3),
            format!("{:.1}", padded.p50_latency_s * 1e3),
            format!("{:.1}", padded.p99_latency_s * 1e3),
            format!("{:.2}x", padded.p99_latency_s / adaptive.p99_latency_s),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &[
                "load (seq/s)",
                "batch size",
                "adaptive p50 (ms)",
                "adaptive p99 (ms)",
                "padded p50 (ms)",
                "padded p99 (ms)",
                "p99 gain",
            ],
            &rows,
        )
    );
    println!("(same chip and arrivals; only the scheduling policy differs)");
}
