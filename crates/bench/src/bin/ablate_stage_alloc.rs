//! Ablation: Algorithm 1 stage allocation vs a naive uniform split, and
//! the effect of the proportional DSP balancing step, plus the multi-head
//! DAG view (critical path vs serial work).

use lat_bench::tables;
use lat_core::dag::TaskDag;
use lat_core::stage_alloc::{allocate_stages, naive_split, priorities, ResourceModel};
use lat_model::config::ModelConfig;
use lat_model::graph::{AttentionMode, OperatorGraph};

fn main() {
    println!("Ablation — Algorithm 1 stage allocation (BERT-base, s_avg = 177, sparse)\n");
    let cfg = ModelConfig::bert_base();
    let graph = OperatorGraph::encoder(&cfg);
    let mode = AttentionMode::paper_sparse();
    let res = ResourceModel::default();

    // Priorities (Eq. 1).
    println!("Eq. 1 critical-path priorities:");
    let prio = priorities(&graph, 177, mode);
    for (op, p) in graph.operators().iter().zip(&prio) {
        println!("  {:<12} {:>16}", op.kind.label(), p);
    }

    // Three allocations: Algorithm 1 raw, Algorithm 1 + balancing, naive.
    let raw = allocate_stages(&graph, 177, mode, res);
    let mut balanced = raw.clone();
    balanced.balance_to_budget(&graph, 177, mode);
    let naive = naive_split(&graph, balanced.num_stages(), res);

    let mut rows = Vec::new();
    for (name, alloc) in [
        ("Algorithm 1 (raw)", &raw),
        ("Algorithm 1 + balance", &balanced),
        ("naive uniform split", &naive),
    ] {
        let lats = alloc.stage_latencies(&graph, 177, mode);
        rows.push(vec![
            name.to_string(),
            alloc.num_stages().to_string(),
            alloc.total_dsp().to_string(),
            format!("{:?}", lats),
            alloc.bottleneck_latency(&graph, 177, mode).to_string(),
        ]);
    }
    println!(
        "\n{}",
        tables::render(
            &[
                "allocation",
                "stages",
                "DSP used",
                "stage latencies (cyc)",
                "bottleneck"
            ],
            &rows,
        )
    );

    let speedup = naive.bottleneck_latency(&graph, 177, mode) as f64
        / balanced.bottleneck_latency(&graph, 177, mode) as f64;
    println!("Algorithm 1 + balancing vs naive uniform split: {speedup:.2}x lower pipeline II\n");

    // Multi-head DAG view.
    println!("Multi-head operator DAG (Fig. 2a's parallel head hardware):");
    let dag = TaskDag::encoder_multihead(&cfg, 177, mode);
    println!(
        "  nodes: {}, total work: {} FLOPs",
        dag.len(),
        dag.total_weight()
    );
    println!("  critical path: {} FLOPs", dag.critical_path());
    let mut rows = Vec::new();
    for units in [1usize, 2, 4, 8, 12] {
        let s = dag.list_schedule(units);
        rows.push(vec![
            units.to_string(),
            s.makespan.to_string(),
            format!(
                "{:.1}%",
                100.0 * dag.total_weight() as f64 / (s.makespan as f64 * units as f64)
            ),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &["exec units", "makespan (FLOPs)", "unit efficiency"],
            &rows
        )
    );
}
