//! Fig. 1(c): time-consumption breakdown of one encoder at sequence length
//! 128 (the paper measures TensorRT on WikiText-2; we profile the RTX 6000
//! platform model, whose attention/GEMM efficiency split reproduces the
//! same picture).
//!
//! Prints each operator's share of encoder time, grouped into the paper's
//! two categories: the self-attention workflow and "other".

use lat_bench::tables;
use lat_model::config::ModelConfig;
use lat_model::graph::{AttentionMode, OperatorGraph};
use lat_platforms::{Platform, PlatformKind};

fn main() {
    const SEQ_LEN: usize = 128;
    println!("Fig. 1(c) — encoder operator time breakdown (BERT-base, n = {SEQ_LEN})\n");

    let cfg = ModelConfig::bert_base();
    let graph = OperatorGraph::encoder(&cfg);
    let gpu = Platform::preset(PlatformKind::RtxQuadro6000);
    let scale = gpu.length_efficiency(SEQ_LEN);

    // Per-operator time on the GPU profile: FLOPs / effective rate, with
    // the attention workflow at attention efficiency and the rest at GEMM
    // efficiency.
    let times: Vec<(String, f64, bool)> = graph
        .operators()
        .iter()
        .map(|op| {
            let fl = graph.flops(op.kind, SEQ_LEN, AttentionMode::Dense) as f64;
            let eff = if op.kind.is_attention() {
                gpu.attention_efficiency
            } else {
                gpu.gemm_efficiency
            };
            let t = fl / (gpu.peak_flops * eff * scale);
            (op.kind.label().to_string(), t, op.kind.is_attention())
        })
        .collect();

    let total: f64 = times.iter().map(|(_, t, _)| t).sum();
    let rows: Vec<Vec<String>> = times
        .iter()
        .map(|(label, t, attn)| {
            vec![
                label.clone(),
                if *attn {
                    "self-attention".into()
                } else {
                    "other".into()
                },
                format!("{:.2}", t * 1e6),
                tables::pct(t / total),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(&["operator", "group", "time (us)", "share"], &rows)
    );

    let attn_time: f64 = times.iter().filter(|(_, _, a)| *a).map(|(_, t, _)| t).sum();
    println!(
        "encoder total: {:.1} us;  self-attention workflow share: {}  (paper: ~60% incl. its linear transforms)",
        total * 1e6,
        tables::pct(attn_time / total)
    );
    // The paper's Fig. 1(b) draws the QKV/output linear transforms inside
    // the self-attention box; with those included:
    let attn_incl: f64 = times
        .iter()
        .filter(|(l, _, a)| *a || l.contains("QKV") || l.contains("Out-"))
        .map(|(_, t, _)| t)
        .sum();
    println!(
        "self-attention share incl. QKV/output linear transforms: {}",
        tables::pct(attn_incl / total)
    );
}
