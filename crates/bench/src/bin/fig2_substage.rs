//! Fig. 2(a) Stage-2 sub-stage pipeline: candidate load (2.1) → fused
//! score kernel (2.2) → `S·V` output (2.3), pipelined at query-row
//! granularity with double buffers between sub-stages.
//!
//! Prints per-sub-stage cycle costs, the steady-state beat, and the
//! speedup of the intra-layer pipeline across sequence lengths — plus the
//! interaction with the Fig. 4 unroll factor.

use lat_bench::tables;
use lat_hwsim::substage::{pipelined_cycles, sequential_cycles, SubStageCosts};

fn main() {
    println!("Fig. 2(a) — Stage 2 (At-Comp) intra-layer sub-stage pipeline\n");

    let d = 64;
    let k = 30;
    println!("per-row sub-stage costs (d = {d}, k = {k}):");
    let mut rows = Vec::new();
    for unroll in [1u32, 2, 4, 8] {
        let c = SubStageCosts::for_row(d, k, unroll, 64);
        rows.push(vec![
            unroll.to_string(),
            c.load.to_string(),
            c.score.to_string(),
            c.apply.to_string(),
            c.bottleneck().to_string(),
            format!("{:.2}x", c.serial() as f64 / c.bottleneck() as f64),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &[
                "unroll p",
                "2.1 load",
                "2.2 fused score",
                "2.3 S·V",
                "beat (bottleneck)",
                "pipeline gain bound",
            ],
            &rows,
        )
    );

    println!("whole-sequence makespan (unroll 2):");
    let c = SubStageCosts::for_row(d, k, 2, 64);
    let mut rows = Vec::new();
    for n in [32usize, 128, 512, 821] {
        let pipe = pipelined_cycles(c, n);
        let seq = sequential_cycles(c, n);
        rows.push(vec![
            n.to_string(),
            pipe.to_string(),
            seq.to_string(),
            format!("{:.2}x", seq as f64 / pipe as f64),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &[
                "rows (seq len)",
                "pipelined cyc",
                "sequential cyc",
                "speedup"
            ],
            &rows,
        )
    );
    println!("(double buffers between 2.1/2.2/2.3 let consecutive query rows overlap)");
}
