//! Ablation: design-space exploration over the resource-model knobs
//! (§5.2's "exploit the design space" step) — PE granularity, per-stage
//! DSP budget and allocation tuning length, evaluated on an RTE workload.

use lat_bench::tables;
use lat_hwsim::dse::{explore, DseGrid};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::DatasetSpec;

fn main() {
    println!("Ablation — design-space exploration (BERT-base on RTE batches of 16)\n");
    let cfg = ModelConfig::bert_base();
    let mut rng = SplitMix64::new(0xD5E);
    let workload = DatasetSpec::rte().sample_batches(&mut rng, 16, 3);

    let grid = DseGrid {
        dsp_per_instance: vec![8, 16, 32],
        stage_budgets: vec![600, 1000, 1500],
        tuning_lengths: vec![68, 177, 400],
    };
    let points = explore(
        &cfg,
        AttentionMode::paper_sparse(),
        &FpgaSpec::alveo_u280(),
        &workload,
        &grid,
    );

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dsp_per_instance.to_string(),
                p.stage_budget.to_string(),
                p.tuning_length.to_string(),
                p.num_stages.to_string(),
                format!("{:.3}", p.seconds * 1e3),
                format!("{:.1}%", 100.0 * p.utilization),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &[
                "DSP/instance",
                "stage budget",
                "tuned length",
                "stages",
                "batch latency (ms)",
                "utilization",
            ],
            &rows,
        )
    );
    let best = &points[0];
    let worst = points.last().expect("non-empty grid");
    println!(
        "best: {} DSP/instance, budget {}, tuned at {} → {:.3} ms ({:.2}x better than worst)",
        best.dsp_per_instance,
        best.stage_budget,
        best.tuning_length,
        best.seconds * 1e3,
        worst.seconds / best.seconds
    );
}
