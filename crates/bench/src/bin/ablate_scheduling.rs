//! Ablation: scheduling policy × batch size × dataset.
//!
//! Quantifies what each half of the co-design buys: length-aware streaming
//! vs TurboTransformer-style micro-batching vs TensorRT-style padding, on
//! the real accelerator timing model, across the three datasets and batch
//! sizes.

use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::DatasetSpec;

fn main() {
    println!("Ablation — scheduling policy (BERT-base, length-aware chip)\n");
    let cfg = ModelConfig::bert_base();
    let mut rows = Vec::new();

    for dataset in DatasetSpec::paper_datasets() {
        let design = AcceleratorDesign::new(
            &cfg,
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            dataset.avg_len,
        );
        for batch_size in [8usize, 16, 32] {
            let dataset_salt = dataset.name.bytes().map(u64::from).sum::<u64>();
            let mut rng = SplitMix64::new(0x5C4ED + batch_size as u64 + (dataset_salt << 16));
            let batch = dataset.sample_batch(&mut rng, batch_size);
            let adaptive = design.run_batch(&batch, SchedulingPolicy::LengthAware);
            let micro = design.run_batch(&batch, SchedulingPolicy::MicroBatch { size: 4 });
            let padded = design.run_batch(&batch, SchedulingPolicy::PadToMax);
            let padded_schedule = design.schedule(&batch, SchedulingPolicy::PadToMax);
            rows.push(vec![
                dataset.name.clone(),
                batch_size.to_string(),
                format!("{:.2}", adaptive.seconds * 1e3),
                format!("{:.2}x", micro.seconds / adaptive.seconds),
                format!("{:.2}x", padded.seconds / adaptive.seconds),
                format!("{:.1}%", 100.0 * adaptive.mean_utilization()),
                format!("{:.2}x", padded_schedule.padding_overhead()),
            ]);
        }
    }

    println!(
        "{}",
        tables::render(
            &[
                "dataset",
                "batch",
                "length-aware (ms)",
                "micro-batch cost",
                "pad-to-max cost",
                "utilization",
                "padding waste",
            ],
            &rows,
        )
    );
    println!("(costs are relative to length-aware on the same chip; padding waste is");
    println!(" billed/real tokens under pad-to-max — compare Table 1's Max/Avg column)");
}
