//! Million-request streaming smoke: the bounded-memory serving claim,
//! measured.
//!
//! Runs a 1M-request Poisson trace through the fleet engine twice — once
//! under `ReportMode::Streaming` (P² sketches, no per-request retention)
//! and once under `ReportMode::Exact` (the full latency vector) — and
//! asserts the PR's contract on the pair:
//!
//! 1. **Bounded memory**: the streaming run retains zero per-request
//!    latency samples and zero batch records; its tracked-allocation
//!    proxy must come in far below the exact run's.
//! 2. **Bit-identical counters**: completed, makespan, throughput and
//!    mean batch size match the exact run exactly.
//! 3. **ε-pinned percentiles**: sketch p50/p95/p99 within
//!    [`QUANTILE_EPS`] (relative) of the exact ranks.
//!
//! Wall time, event rate and the allocation-counter peak-RSS proxy are
//! appended to `BENCH_fleet.json` (schema 2). The request count is
//! `SMOKE_REQUESTS` unless the `SMOKE_MILLION_REQUESTS` env var
//! overrides it (useful for a quick local pass); the recorded entry
//! carries whichever count ran.

use lat_bench::benchfile;
use lat_bench::scenarios::harness_seed;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::sketch::ReportMode;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet_instrumented, BatcherConfig, DispatchPolicy,
    FleetReport, FleetRunStats,
};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::datasets::DatasetSpec;
use serde::json::Value;

/// Default trace length — the million-request target.
const SMOKE_REQUESTS: usize = 1_000_000;
/// Arrival rate: high enough that the simulated span stays ~20 s and
/// batches actually fill.
const SMOKE_RATE_SEQ_S: f64 = 50_000.0;
/// Fleet width for the smoke.
const SMOKE_SHARDS: usize = 4;
/// Relative tolerance pinned on each sketch percentile vs the exact rank.
const QUANTILE_EPS: f64 = 0.25;

fn requests() -> usize {
    match std::env::var("SMOKE_MILLION_REQUESTS") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("SMOKE_MILLION_REQUESTS {s:?} is not a usize")),
        Err(_) => SMOKE_REQUESTS,
    }
}

fn run(mode: ReportMode, trace_len: usize) -> (FleetReport, FleetRunStats, f64) {
    let design = AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        64,
    );
    let fleet = homogeneous_fleet(&design, SMOKE_SHARDS);
    let trace = poisson_trace(
        &DatasetSpec::rte(),
        SMOKE_RATE_SEQ_S,
        trace_len,
        harness_seed(),
    );
    let cfg = BatcherConfig::default();
    let t0 = std::time::Instant::now();
    let (report, stats) = simulate_fleet_instrumented(
        &fleet,
        &trace,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        &cfg,
        mode,
    );
    (report, stats, t0.elapsed().as_secs_f64())
}

fn main() {
    let n = requests();
    let seed = harness_seed();
    println!(
        "Million-request streaming smoke ({n} requests @ {SMOKE_RATE_SEQ_S:.0} seq/s, \
         {SMOKE_SHARDS} shards, seed {seed:#x})\n"
    );

    let (stream, stream_stats, stream_wall_s) = run(ReportMode::Streaming, n);
    let (exact, exact_stats, exact_wall_s) = run(ReportMode::Exact, n);

    // 1. Bounded memory: nothing per-request survives the streaming run.
    assert_eq!(
        stream_stats.retained_latency_samples, 0,
        "streaming run retained per-request latencies"
    );
    assert_eq!(
        stream_stats.retained_batch_records, 0,
        "streaming run retained batch records"
    );
    let (stream_bytes, exact_bytes) = (
        stream_stats.peak_tracked_bytes(),
        exact_stats.peak_tracked_bytes(),
    );
    // Both modes share the pre-seeded O(n) arrival heap (the engine's
    // dominant transient); what streaming eliminates is everything
    // *retained past the run* — the per-request latency vector and the
    // batch log. That retention is the entire proxy gap.
    assert!(
        stream_bytes < exact_bytes,
        "streaming proxy {stream_bytes} B is not below exact {exact_bytes} B"
    );
    let retention_avoided = exact_bytes - stream_bytes;
    assert!(
        retention_avoided as usize >= 8 * n,
        "retention cut {retention_avoided} B is smaller than the latency vector alone"
    );

    // 2. Counters are bit-identical: streaming changes representation,
    // never events.
    assert_eq!(stream.completed, exact.completed);
    assert_eq!(stream.makespan_s.to_bits(), exact.makespan_s.to_bits());
    assert_eq!(
        stream.throughput_seq_s.to_bits(),
        exact.throughput_seq_s.to_bits()
    );
    assert_eq!(
        stream.mean_batch_size.to_bits(),
        exact.mean_batch_size.to_bits()
    );
    assert_eq!(stream_stats.events_processed, exact_stats.events_processed);

    // 3. ε-pinned percentiles.
    for (tag, s, e) in [
        ("p50", stream.p50_latency_s, exact.p50_latency_s),
        ("p95", stream.p95_latency_s, exact.p95_latency_s),
        ("p99", stream.p99_latency_s, exact.p99_latency_s),
    ] {
        let tol = e.abs().max(1e-9) * QUANTILE_EPS + 1e-9;
        assert!(
            (s - e).abs() <= tol,
            "{tag}: sketch {s} vs exact {e} exceeds ε {QUANTILE_EPS}"
        );
        println!("{tag}: sketch {:.6} s vs exact {:.6} s ✓", s, e);
    }

    let events = stream_stats.events_processed;
    let events_per_s = events as f64 / stream_wall_s.max(1e-9);
    println!(
        "\nstreaming: {events} events in {stream_wall_s:.3} s ({events_per_s:.0} ev/s), \
         peak tracked {stream_bytes} B (heap {} events)\n\
         exact:     {:.3} s, peak tracked {exact_bytes} B \
         ({retention_avoided} B of report retention avoided)\n",
        stream_stats.peak_heap_events, exact_wall_s,
    );

    // Perf trajectory: append the streaming record (wall-clock fields are
    // the deliberate nondeterminism of BENCH files).
    let mut entries = benchfile::read_entries("BENCH_fleet.json");
    entries.push(Value::obj([
        ("bench".into(), Value::Str("fleet-streaming-1m".into())),
        (
            "scenario".into(),
            Value::Str(format!(
                "{n} requests @ {SMOKE_RATE_SEQ_S:.0} seq/s, {SMOKE_SHARDS} shards, streaming sketches"
            )),
        ),
        ("requests".into(), Value::UInt(n as u64)),
        ("wall_s".into(), Value::Float(stream_wall_s)),
        ("wall_s_exact".into(), Value::Float(exact_wall_s)),
        ("events_per_s".into(), Value::Float(events_per_s.round())),
        ("peak_tracked_bytes".into(), Value::UInt(stream_bytes)),
        ("peak_tracked_bytes_exact".into(), Value::UInt(exact_bytes)),
        (
            "peak_heap_events".into(),
            Value::UInt(stream_stats.peak_heap_events as u64),
        ),
        ("seed".into(), Value::Str(format!("{seed:#x}"))),
    ]));
    match benchfile::write("BENCH_fleet.json", "fleet", entries) {
        Ok(()) => println!("wrote BENCH_fleet.json"),
        Err(e) => println!("BENCH_fleet.json not written: {e}"),
    }
}
