//! Fig. 5: the length-aware coarse-grained dynamic pipeline timing
//! diagram — batch of 5 sequences, lengths 140/100/82/78/72, flowing
//! through the three coarse stages across two encoder layers, compared
//! against pad-to-max and micro-batching.

use lat_core::pipeline::{
    render_gantt, render_sequence_gantt, schedule_batch, sequential_makespan, LinearStageTiming,
    SchedulingPolicy,
};
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;

fn main() {
    println!("Fig. 5 — length-aware dynamic pipeline (batch of 5, lengths 140/100/82/78/72)\n");
    let lengths = [140usize, 100, 82, 78, 72];
    let layers = 2;

    // Stage timing from the real accelerator design (BERT-base, sparse).
    let design = AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        94, // mean of this batch
    );
    let stages = design.allocation().num_stages();
    let per_token: Vec<f64> = (0..stages)
        .map(|s| design.stage_cycles(s, 100, lengths.len()) as f64 / 100.0)
        .collect();
    let timing = LinearStageTiming::new(per_token.clone(), vec![0; stages]);
    println!(
        "stage cycles/token (from Algorithm 1 allocation): {:?}\n",
        per_token
            .iter()
            .map(|c| c.round() as u64)
            .collect::<Vec<_>>()
    );

    // Fig. 5(a) view: one row per sequence (M = MM|At-Sel, A = At-Comp,
    // F = FdFwd).
    let adaptive = schedule_batch(&lengths, layers, &timing, SchedulingPolicy::LengthAware);
    println!("--- Fig. 5(a): per-sequence view (length-aware) ---");
    println!("{}", render_sequence_gantt(&adaptive, 96));

    let mut results = Vec::new();
    for policy in [
        SchedulingPolicy::LengthAware,
        SchedulingPolicy::PadToMax,
        SchedulingPolicy::MicroBatch { size: 2 },
    ] {
        let s = schedule_batch(&lengths, layers, &timing, policy);
        println!("--- {policy} ---");
        println!("{}", render_gantt(&s, 96));
        println!(
            "makespan: {} cycles; padding overhead {:.2}x; bubbles per stage: {:?}\n",
            s.makespan(),
            s.padding_overhead(),
            (0..stages).map(|k| s.bubble_cycles(k)).collect::<Vec<_>>()
        );
        results.push((policy, s.makespan()));
    }

    let seq = sequential_makespan(&lengths, layers, &timing);
    println!("sequential (no pipelining): {seq} cycles");
    let padded = results[1].1;
    let adaptive = results[0].1;
    println!(
        "\nsaved vs pad-to-max: {} cycles ({:.1}%)  — the 'Saved' annotation of Fig. 5",
        padded - adaptive,
        100.0 * (padded - adaptive) as f64 / padded as f64
    );
}
