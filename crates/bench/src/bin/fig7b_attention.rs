//! Fig. 7(b): attention-only cross-platform throughput comparison.
//!
//! Same scenarios and platforms as Fig. 7(a), but the measured quantity is
//! the self-attention workflow only. The paper's geomeans: FPGA sparse
//! attention is 1073× / 550× / 35× / 41× faster than CPU / Jetson TX2 /
//! RTX 6000 / FPGA-baseline.
//!
//! The gap is much larger than end-to-end because software platforms run
//! the attention workflow far below their GEMM efficiency (memory-bound
//! softmax, small batched matmuls over padded `O(n²)` score matrices),
//! while the co-design replaces `O(n²)` with `O(n·k)` and keeps the
//! pipeline full.

use lat_bench::scenarios::{geomean, Scenario, DEFAULT_BATCHES, HARNESS_SEED};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::spec::FpgaSpec;
use lat_model::graph::AttentionMode;
use lat_platforms::Platform;

fn main() {
    println!("Fig. 7(b) — attention-only cross-platform throughput (seed {HARNESS_SEED:#x})\n");
    let platforms = Platform::all_presets();
    let mut rows = Vec::new();
    let mut ours_speedups: Vec<Vec<f64>> = vec![Vec::new(); 4];

    for sc in Scenario::hardware_eval() {
        let batches = sc.sample_batches(DEFAULT_BATCHES);
        let ours = AcceleratorDesign::new(
            &sc.model,
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            sc.dataset.avg_len,
        );
        // Fig. 7b baseline: the same silicon as the sparse co-design (units
        // sized for O(n·k) attention), forced to execute dense padded
        // attention.
        let baseline = AcceleratorDesign::with_modes(
            &sc.model,
            AttentionMode::Dense,
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            sc.dataset.avg_len,
        );

        let mut t = [0.0f64; 5];
        for batch in &batches {
            for (i, p) in platforms.iter().enumerate() {
                t[i] += p.attention_seconds(&sc.model, batch);
            }
            t[3] += baseline
                .run_batch_attention_only(batch, SchedulingPolicy::PadToMax)
                .seconds;
            t[4] += ours
                .run_batch_attention_only(batch, SchedulingPolicy::LengthAware)
                .seconds;
        }
        for x in &mut t {
            *x /= batches.len() as f64;
        }

        let cpu = t[0];
        let mut row = vec![sc.label()];
        for &ti in &t {
            row.push(tables::speedup(cpu / ti));
        }
        rows.push(row);
        for i in 0..4 {
            ours_speedups[i].push(t[i] / t[4]);
        }
    }

    println!(
        "{}",
        tables::render(
            &[
                "scenario",
                "CPU",
                "Jetson TX2",
                "RTX 6000",
                "FPGA baseline",
                "FPGA sparse attention",
            ],
            &rows,
        )
    );

    println!("Geomean attention speedup of FPGA sparse attention over each platform:");
    let names = ["CPU", "Jetson TX2", "RTX 6000", "FPGA baseline"];
    let paper = [1073.0, 550.0, 35.0, 41.0];
    for (i, name) in names.iter().enumerate() {
        let g = geomean(&ours_speedups[i]);
        println!(
            "  vs {:14} {:>8}   (paper: {:.0}x)",
            name,
            tables::speedup(g),
            paper[i]
        );
    }
}
