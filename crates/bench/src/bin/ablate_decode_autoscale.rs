//! Ablation: autoscaling the generative-decode engine's slot pool under a
//! diurnal (4× swing) load curve, serving the paper's traffic mix.
//!
//! `ablate_autoscale` scales the *encoder* fleet, where scale-down only
//! has to re-route queued work; here a retiring shard holds KV-resident
//! sequences mid-generation, so scale-down must drain them in place or
//! migrate them (evict + re-prefill the grown context on a survivor).
//! Three claims, asserted while the tables print:
//!
//! 1. **Cost** — under the 4× diurnal swing, reactive AND predictive
//!    autoscaling attain the fixed-max fleet's p95 TTFT within
//!    [`DECODE_AUTOSCALE_P95_TOLERANCE`] while spending at most
//!    [`DECODE_AUTOSCALE_COST_MARGIN`] of its shard-seconds — in both
//!    scale-down modes.
//! 2. **Forecast** — on the diurnal up-ramps (the rising quarter-periods
//!    *after* the estimator has seen one full cycle), the predictive
//!    policy's TTFT SLO attainment beats the reactive policy's: it
//!    launches capacity a warm-up ahead of the demand instead of eating a
//!    backlog first.
//! 3. **Pinning** — a pinned autoscaler at min == max shards reproduces
//!    `simulate_decode` bit-for-bit (the invariant
//!    `tests/decode_autoscale_props.rs` property-tests).
//!
//! Deterministic under `HARNESS_SEED`.

use lat_bench::scenarios::{
    decode_autoscale_mix, DECODE_AUTOSCALE_ALPHA, DECODE_AUTOSCALE_COOLDOWN_S,
    DECODE_AUTOSCALE_COST_MARGIN, DECODE_AUTOSCALE_DOWN_DEPTH, DECODE_AUTOSCALE_EVAL_INTERVAL_S,
    DECODE_AUTOSCALE_MAX_SHARDS, DECODE_AUTOSCALE_MEAN_RATE, DECODE_AUTOSCALE_MIN_SHARDS,
    DECODE_AUTOSCALE_P95_TOLERANCE, DECODE_AUTOSCALE_PERIOD_S, DECODE_AUTOSCALE_REQUESTS,
    DECODE_AUTOSCALE_SHARD_CAPACITY, DECODE_AUTOSCALE_SLOTS, DECODE_AUTOSCALE_SLO_TTFT_S,
    DECODE_AUTOSCALE_SWING, DECODE_AUTOSCALE_UP_DEPTH, DECODE_AUTOSCALE_WARMUP_S,
    DECODE_HIGH_FRACTION, DECODE_TTFT_DEADLINE_S, HARNESS_SEED,
};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::autoscale::{
    simulate_decode_autoscale, DecodeAutoscaleConfig, DecodeAutoscaleReport, DecodeScaleDown,
    ScalePolicy,
};
use lat_hwsim::decode::{
    nonstationary_decode_trace, simulate_decode, DecodeConfig, DecodeScheduler,
};
use lat_hwsim::fleet::{homogeneous_fleet, DispatchPolicy, RateProfile};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::datasets::LengthSampler;

fn design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn reactive_policy() -> ScalePolicy {
    ScalePolicy::Reactive {
        scale_up_depth: DECODE_AUTOSCALE_UP_DEPTH,
        scale_down_depth: DECODE_AUTOSCALE_DOWN_DEPTH,
    }
}

fn predictive_policy() -> ScalePolicy {
    ScalePolicy::Predictive {
        shard_capacity: DECODE_AUTOSCALE_SHARD_CAPACITY,
        // One warm-up plus one tick ahead: a shard launched on the
        // forecast is warm exactly when the predicted load lands.
        horizon_s: DECODE_AUTOSCALE_WARMUP_S + DECODE_AUTOSCALE_EVAL_INTERVAL_S,
        alpha: DECODE_AUTOSCALE_ALPHA,
        period_s: Some(DECODE_AUTOSCALE_PERIOD_S),
    }
}

fn base_cfg(
    policy: ScalePolicy,
    scale_down: DecodeScaleDown,
    min: usize,
    initial: usize,
    bounds: Vec<f64>,
) -> DecodeAutoscaleConfig {
    DecodeAutoscaleConfig {
        min_shards: min,
        initial_shards: initial,
        policy,
        scale_down,
        eval_interval_s: DECODE_AUTOSCALE_EVAL_INTERVAL_S,
        warmup_s: DECODE_AUTOSCALE_WARMUP_S,
        cooldown_s: DECODE_AUTOSCALE_COOLDOWN_S,
        slo_ttft_s: DECODE_AUTOSCALE_SLO_TTFT_S,
        phase_bounds_s: bounds,
    }
}

fn row(name: &str, mode: &str, r: &DecodeAutoscaleReport) -> Vec<String> {
    vec![
        name.to_string(),
        mode.to_string(),
        format!("{:.1}", r.shard_seconds),
        format!("{:.2}", r.mean_active_shards),
        format!("{}", r.peak_active_shards),
        format!("{:.0}", r.decode.ttft_p50_s * 1e3),
        format!("{:.0}", r.decode.ttft_p95_s * 1e3),
        format!("{:.0}", r.decode.goodput_tok_s),
        tables::pct(r.slo_attainment),
        format!("{}", r.migrations),
        format!("{}", r.re_prefills),
    ]
}

/// Request-weighted TTFT SLO attainment over the trace's *up-ramp*
/// quarter-periods (rate rising: quarters 0 and 3 of each diurnal cycle),
/// skipping the first full cycle — the forecaster's training window.
fn upramp_attainment(r: &DecodeAutoscaleReport) -> f64 {
    let quarter = DECODE_AUTOSCALE_PERIOD_S / 4.0;
    let (mut hit, mut total) = (0.0, 0usize);
    for p in &r.phases {
        if !p.end_s.is_finite() || p.start_s < DECODE_AUTOSCALE_PERIOD_S {
            continue;
        }
        let q = (p.start_s / quarter).round() as usize % 4;
        if q == 0 || q == 3 {
            hit += p.slo_attainment * p.requests as f64;
            total += p.requests;
        }
    }
    assert!(total > 0, "no up-ramp phases past the first cycle");
    hit / total as f64
}

fn main() {
    let prefill = decode_autoscale_mix();
    let output = prefill.decode_output();
    let profile = RateProfile::Diurnal {
        mean_rate: DECODE_AUTOSCALE_MEAN_RATE,
        swing: DECODE_AUTOSCALE_SWING,
        period_s: DECODE_AUTOSCALE_PERIOD_S,
    };
    let trace = nonstationary_decode_trace(
        &prefill,
        &output,
        DECODE_HIGH_FRACTION,
        &profile,
        DECODE_AUTOSCALE_REQUESTS,
        HARNESS_SEED,
    );
    let horizon = trace.last().expect("non-empty trace").arrival_s;
    // Reporting phases: quarter-period buckets — rising quarters (0 and 3
    // of each cycle) are the up-ramps the forecast claim is judged on.
    let quarter = DECODE_AUTOSCALE_PERIOD_S / 4.0;
    let bounds: Vec<f64> = (1..)
        .map(|i| i as f64 * quarter)
        .take_while(|b| *b < horizon)
        .collect();
    let fleet = homogeneous_fleet(&design(99), DECODE_AUTOSCALE_MAX_SHARDS);
    let decode_cfg = DecodeConfig {
        max_slots: DECODE_AUTOSCALE_SLOTS,
        ttft_deadline_s: DECODE_TTFT_DEADLINE_S,
    };
    let run = |shards: &[AcceleratorDesign], cfg: &DecodeAutoscaleConfig| {
        simulate_decode_autoscale(
            shards,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &decode_cfg,
            cfg,
        )
    };

    println!(
        "Ablation — decode autoscaling (BERT-base, {} prompts, {} outputs,\n\
         {} requests, {} slots/shard, diurnal {:.0}×{:.0} seq/s swing, period {:.0} s,\n\
         warm-up {:.2} s, TTFT SLO {:.0} ms, seed {HARNESS_SEED:#x})\n",
        prefill.label(),
        output.label(),
        DECODE_AUTOSCALE_REQUESTS,
        DECODE_AUTOSCALE_SLOTS,
        DECODE_AUTOSCALE_SWING,
        DECODE_AUTOSCALE_MEAN_RATE,
        DECODE_AUTOSCALE_PERIOD_S,
        DECODE_AUTOSCALE_WARMUP_S,
        DECODE_AUTOSCALE_SLO_TTFT_S * 1e3,
    );
    let pool = Scheduler::from_env();
    println!("(sweep pool: {} workers)\n", pool.parallelism());

    // ── The whole policy × scale-down grid (plus the two pinned
    // baselines) is independent, seed-deterministic cells: declare every
    // run, fan them across the pool, read back by index.
    // Scalers start provisioned for the mean demand (2 shards at 30 seq/s
    // against an 18 seq/s capacity) — the deployment-realistic initial
    // state; the diurnal swing still forces both scale directions.
    let initial = (DECODE_AUTOSCALE_MEAN_RATE / DECODE_AUTOSCALE_SHARD_CAPACITY).ceil() as usize;
    let mut jobs: Vec<(usize, DecodeAutoscaleConfig)> = vec![
        (
            DECODE_AUTOSCALE_MAX_SHARDS,
            base_cfg(
                ScalePolicy::Pinned,
                DecodeScaleDown::Drain,
                DECODE_AUTOSCALE_MAX_SHARDS,
                DECODE_AUTOSCALE_MAX_SHARDS,
                bounds.clone(),
            ),
        ),
        (
            DECODE_AUTOSCALE_MIN_SHARDS,
            base_cfg(
                ScalePolicy::Pinned,
                DecodeScaleDown::Drain,
                DECODE_AUTOSCALE_MIN_SHARDS,
                DECODE_AUTOSCALE_MIN_SHARDS,
                bounds.clone(),
            ),
        ),
    ];
    let combos: Vec<(&str, DecodeScaleDown)> = [
        ("reactive", reactive_policy()),
        ("predictive", predictive_policy()),
    ]
    .into_iter()
    .flat_map(|(name, policy)| {
        [DecodeScaleDown::Drain, DecodeScaleDown::Migrate]
            .into_iter()
            .map(move |mode| (name, policy.clone(), mode))
    })
    .map(|(name, policy, mode)| {
        jobs.push((
            DECODE_AUTOSCALE_MAX_SHARDS,
            base_cfg(
                policy,
                mode,
                DECODE_AUTOSCALE_MIN_SHARDS,
                initial,
                bounds.clone(),
            ),
        ));
        (name, mode)
    })
    .collect();
    let mut results = pool
        .par_map_indexed(&jobs, |(k, cfg)| run(&fleet[..*k], cfg))
        .into_iter();
    let mut next = || results.next().expect("one result per job");
    let (pinned, fixed_min) = (next(), next());

    // ── Claim 3: pinned min==max IS simulate_decode ────────────────────
    let fixed_decode = simulate_decode(
        &fleet,
        &trace,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        DecodeScheduler::Continuous,
        &decode_cfg,
    );
    assert_eq!(
        pinned.decode, fixed_decode,
        "pinned min==max decode autoscaling drifted from simulate_decode"
    );
    let fixed_max = pinned;
    let mut rows = vec![
        row(
            &format!("fixed-min ({DECODE_AUTOSCALE_MIN_SHARDS})"),
            "-",
            &fixed_min,
        ),
        row(
            &format!("fixed-max ({DECODE_AUTOSCALE_MAX_SHARDS})"),
            "-",
            &fixed_max,
        ),
    ];
    let mut sweep: Vec<(String, DecodeScaleDown, DecodeAutoscaleReport)> = Vec::new();
    for (name, mode) in combos {
        let r = next();
        rows.push(row(name, &mode.to_string(), &r));
        sweep.push((name.to_string(), mode, r));
    }
    println!(
        "Policy × scale-down (JSQ dispatch, continuous batching, capacity oracle\n\
         {DECODE_AUTOSCALE_SHARD_CAPACITY:.0} seq/s/shard for the predictive policy)"
    );
    println!(
        "{}",
        tables::render(
            &[
                "policy",
                "scale-down",
                "shard-sec",
                "mean shards",
                "peak",
                "TTFT p50 (ms)",
                "TTFT p95 (ms)",
                "goodput (tok/s)",
                "SLO att.",
                "migrations",
                "re-prefills",
            ],
            &rows,
        )
    );

    // ── Claim 2: predictive beats reactive on the up-ramps ─────────────
    let reactive_drain = &sweep[0].2;
    let predictive_drain = &sweep[2].2;
    let re_up = upramp_attainment(reactive_drain);
    let pre_up = upramp_attainment(predictive_drain);
    assert!(
        pre_up > re_up,
        "predictive up-ramp SLO {pre_up} !> reactive {re_up}"
    );
    assert!(
        predictive_drain.decode.ttft_p95_s < reactive_drain.decode.ttft_p95_s,
        "predictive p95 TTFT {} !< reactive {}",
        predictive_drain.decode.ttft_p95_s,
        reactive_drain.decode.ttft_p95_s
    );

    // ── TTFT SLO attainment per quarter-period phase ───────────────────
    let phase_rows: Vec<Vec<String>> = fixed_min
        .phases
        .iter()
        .zip(&fixed_max.phases)
        .zip(reactive_drain.phases.iter().zip(&predictive_drain.phases))
        .map(|((lo, hi), (re, pr))| {
            let end = if lo.end_s.is_finite() {
                format!("{:.0}", lo.end_s)
            } else {
                "∞".into()
            };
            let q = (lo.start_s / quarter).round() as usize % 4;
            let ramp = if q == 0 || q == 3 { "rise" } else { "fall" };
            vec![
                format!("[{:.0}, {end}) s {ramp}", lo.start_s),
                format!("{}", lo.requests),
                tables::pct(lo.slo_attainment),
                tables::pct(hi.slo_attainment),
                tables::pct(re.slo_attainment),
                tables::pct(pr.slo_attainment),
            ]
        })
        .collect();
    println!("TTFT SLO attainment per quarter-period phase (drain scale-down)");
    println!(
        "{}",
        tables::render(
            &[
                "phase",
                "requests",
                "fixed-min",
                "fixed-max",
                "reactive",
                "predictive",
            ],
            &phase_rows,
        )
    );
    // ── Claim 1: cost × p95 TTFT against the fixed-max fleet ───────────
    for (name, mode, r) in &sweep {
        assert!(
            r.decode.ttft_p95_s <= fixed_max.decode.ttft_p95_s * DECODE_AUTOSCALE_P95_TOLERANCE,
            "{name}/{mode}: p95 TTFT {} !<= {} × fixed-max {}",
            r.decode.ttft_p95_s,
            DECODE_AUTOSCALE_P95_TOLERANCE,
            fixed_max.decode.ttft_p95_s
        );
        assert!(
            r.shard_seconds <= fixed_max.shard_seconds * DECODE_AUTOSCALE_COST_MARGIN,
            "{name}/{mode}: shard-seconds {} !<= {} × fixed-max {}",
            r.shard_seconds,
            DECODE_AUTOSCALE_COST_MARGIN,
            fixed_max.shard_seconds
        );
        // Scale-down must never drop work, whatever it does to residents.
        assert_eq!(
            r.decode.fleet.completed, DECODE_AUTOSCALE_REQUESTS,
            "{name}/{mode} dropped requests"
        );
        match mode {
            DecodeScaleDown::Drain => assert_eq!(r.migrations, 0, "{name}: drain migrated"),
            DecodeScaleDown::Migrate => assert_eq!(
                r.re_prefills, r.migrations,
                "{name}: migrations not re-prefilled exactly once"
            ),
        }
    }

    println!(
        "(pinned≡simulate_decode, p95-TTFT-within-{DECODE_AUTOSCALE_P95_TOLERANCE}×-at-≤{:.0}%-cost for\n\
         every policy × scale-down combination, and predictive>reactive up-ramp SLO\n\
         ({:.1}% vs {:.1}%, cycles ≥ 2) asserted above; the forecast launches shards a\n\
         warm-up ahead of the diurnal ramp instead of eating a backlog first)",
        DECODE_AUTOSCALE_COST_MARGIN * 100.0,
        pre_up * 100.0,
        re_up * 100.0,
    );
}
