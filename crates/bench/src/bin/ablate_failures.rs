//! Ablation: failure & burst scenarios — a flash-crowd burst with a
//! mid-peak shard crash, driven through the fault-injection layer
//! (`lat_hwsim::failure`) over fixed and autoscaled fleets.
//!
//! Four claims, asserted while the tables print:
//!
//! 1. **Conservation** — zero dropped requests through a mid-peak shard
//!    crash: every request is accounted as completed or explicitly
//!    timed-out, and a patient client over the recovering fleet completes
//!    everything (the crash re-routes, never loses).
//! 2. **Recovery** — post-incident SLO attainment (arrivals after
//!    recovery + one warm-up) comes within [`FAILURE_RECOVERY_TOLERANCE`]
//!    of the pre-incident level, under the reactive AND the predictive
//!    autoscaling policy.
//! 3. **Outage validity** — an unrecovered total outage (zero
//!    completions) produces a well-defined, NaN-free report instead of a
//!    panic.
//! 4. **Migrate beats drain** — when a decode shard straggles with large
//!    live KV residents, evicting and re-prefilling the victims on the
//!    survivors finishes them sooner than draining in place.
//!
//! Also maintains `BENCH_fleet.json` (schema 2): an append-style
//! `entries` array of wall-time records — the fixed-fleet scenario plus a
//! serial-vs-4-worker parallel sweep (asserted bit-identical) — so the
//! file accumulates a PR-over-PR perf trajectory instead of overwriting a
//! single snapshot. A pre-existing schema-1 record is migrated into the
//! array on first run. Deterministic under `HARNESS_SEED` (the JSON's
//! wall-clock fields are the one deliberate exception).

use lat_bench::scenarios::{
    failure_mix, DECODE_SLOTS, FAILURE_BACKOFF_S, FAILURE_BASE_RATE, FAILURE_BURST_DURATION_S,
    FAILURE_BURST_RATE, FAILURE_BURST_START_S, FAILURE_CRASH_S, FAILURE_DEADLINE_S,
    FAILURE_DECODE_GAP_S, FAILURE_DECODE_OUTPUT, FAILURE_DECODE_PREFILL, FAILURE_DECODE_REQUESTS,
    FAILURE_DECODE_SHARDS, FAILURE_DECODE_SLO_TTFT_S, FAILURE_MAX_RETRIES, FAILURE_MAX_SHARDS,
    FAILURE_MIN_SHARDS, FAILURE_RECOVERY_TOLERANCE, FAILURE_RECOVER_S, FAILURE_REQUESTS,
    FAILURE_SHARD_CAPACITY, FAILURE_SLO_LATENCY_S, FAILURE_STRAGGLER_SLOWDOWN,
    FAILURE_STRAGGLER_WINDOW_S, FAILURE_TIMEOUT_S, FAILURE_WARMUP_S, HARNESS_SEED,
};
use lat_bench::{benchfile, tables};
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::autoscale::{AutoscaleConfig, DecodeScaleDown, RetirePolicy, ScalePolicy};
use lat_hwsim::decode::{DecodeConfig, DecodeRequest, DecodeScheduler, Priority};
use lat_hwsim::failure::{
    simulate_autoscale_failure, simulate_decode_failure, simulate_fleet_failure, ClientConfig,
    ClientOutcome, FailureReport, Fault, FaultKind, FaultPlan, IncidentPhase,
};
use lat_hwsim::fleet::{
    homogeneous_fleet, nonstationary_poisson_trace, BatcherConfig, DispatchPolicy, RateProfile,
    Request,
};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::datasets::LengthSampler;
use serde::json::Value;

fn design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn incident_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![Fault {
            shard: 0,
            kind: FaultKind::Crash {
                at_s: FAILURE_CRASH_S,
                recover_s: Some(FAILURE_RECOVER_S),
            },
        }],
    }
}

fn retry_client() -> ClientConfig {
    ClientConfig {
        timeout_s: FAILURE_TIMEOUT_S,
        max_retries: FAILURE_MAX_RETRIES,
        backoff_s: FAILURE_BACKOFF_S,
        deadline_s: FAILURE_DEADLINE_S,
    }
}

fn base_cfg(policy: ScalePolicy) -> AutoscaleConfig {
    AutoscaleConfig {
        min_shards: FAILURE_MIN_SHARDS,
        initial_shards: 2, // sized for the base rate; the burst forces the rest
        policy,
        retire: RetirePolicy::Drain,
        eval_interval_s: 0.1,
        warmup_s: FAILURE_WARMUP_S,
        cooldown_s: 0.2,
        slo_latency_s: FAILURE_SLO_LATENCY_S,
        phase_bounds_s: Vec::new(),
    }
}

/// SLO attainment over the requests whose *original* arrival falls in
/// `[lo, hi)`: completed inside the SLO / arrivals (timed-out = miss).
fn slo_over(trace: &[Request], outcomes: &[ClientOutcome], lo: f64, hi: f64) -> f64 {
    let mut arrivals = 0usize;
    let mut in_slo = 0usize;
    for (r, o) in trace.iter().zip(outcomes) {
        if r.arrival_s >= lo && r.arrival_s < hi {
            arrivals += 1;
            if o.latency_s <= FAILURE_SLO_LATENCY_S {
                in_slo += 1;
            }
        }
    }
    if arrivals == 0 {
        1.0
    } else {
        in_slo as f64 / arrivals as f64
    }
}

fn phase_label(p: &IncidentPhase) -> String {
    let end = if p.end_s.is_finite() {
        format!("{:.1}", p.end_s)
    } else {
        "∞".into()
    };
    format!("[{:.1}, {end}) s", p.start_s)
}

fn phase_rows(phases: &[IncidentPhase]) -> Vec<Vec<String>> {
    let names = ["pre", "during", "post"];
    phases
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                names.get(i).unwrap_or(&"?").to_string(),
                phase_label(p),
                format!("{}", p.arrivals),
                format!("{}", p.timed_out),
                tables::pct(p.slo_attainment),
                format!("{:.0}", p.goodput_seq_s),
                format!("{:.0}", p.p95_latency_s * 1e3),
                format!("{}", p.scale_events),
            ]
        })
        .collect()
}

fn print_phases(title: &str, phases: &[IncidentPhase]) {
    println!("{title}");
    println!(
        "{}",
        tables::render(
            &[
                "phase",
                "window",
                "arrivals",
                "timed-out",
                "SLO att.",
                "goodput/s",
                "p95 (ms)",
                "scale ev.",
            ],
            &phase_rows(phases),
        )
    );
}

/// Claim 1's accounting: nothing vanished, whatever the client policy.
fn assert_conserved(name: &str, r: &FailureReport, total: usize) {
    assert_eq!(
        r.completed + r.timed_out,
        total,
        "{name}: {} completed + {} timed-out != {total} requests — a request was lost",
        r.completed,
        r.timed_out
    );
    assert_eq!(r.outcomes.len(), total);
    assert_eq!(
        r.phases.iter().map(|p| p.arrivals).sum::<usize>(),
        total,
        "{name}: incident phases do not partition the trace"
    );
}

fn main() {
    let profile = RateProfile::Burst {
        base_rate: FAILURE_BASE_RATE,
        burst_rate: FAILURE_BURST_RATE,
        start_s: FAILURE_BURST_START_S,
        duration_s: FAILURE_BURST_DURATION_S,
    };
    let trace =
        nonstationary_poisson_trace(&failure_mix(), &profile, FAILURE_REQUESTS, HARNESS_SEED);
    let fleet = homogeneous_fleet(&design(99), FAILURE_MAX_SHARDS);
    let batcher = BatcherConfig::default();
    let plan = incident_plan();
    let pool = Scheduler::from_env();

    println!(
        "Ablation — failure & burst (BERT-base, {} prompts, {} requests,\n\
         burst {:.0}→{:.0} seq/s over [{:.1}, {:.1}) s, shard 0 crash {:.1} s → recover {:.1} s,\n\
         SLO {:.0} ms, seed {HARNESS_SEED:#x}, {} workers)\n",
        failure_mix().label(),
        FAILURE_REQUESTS,
        FAILURE_BASE_RATE,
        FAILURE_BURST_RATE,
        FAILURE_BURST_START_S,
        FAILURE_BURST_START_S + FAILURE_BURST_DURATION_S,
        FAILURE_CRASH_S,
        FAILURE_RECOVER_S,
        FAILURE_SLO_LATENCY_S * 1e3,
        pool.parallelism(),
    );

    // ── Claim 1: fixed fleet, patient client — the crash drops nothing ──
    // The patient and retrying runs share every input but the client
    // policy: fan the pair across the pool, consume in index order.
    let clients = [ClientConfig::patient(), retry_client()];
    let mut client_runs = pool
        .par_map_indexed(&clients, |client| {
            simulate_fleet_failure(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &batcher,
                &plan,
                client,
                FAILURE_SLO_LATENCY_S,
            )
        })
        .into_iter();
    let patient = client_runs.next().expect("patient report");
    let fixed_retry = client_runs.next().expect("retry report");
    assert_conserved("fixed/patient", &patient, trace.len());
    assert_eq!(
        patient.completed,
        trace.len(),
        "a patient client over the recovering fleet must complete everything \
         ({} of {} completed)",
        patient.completed,
        trace.len()
    );
    print_phases(
        "Fixed fleet (4 shards), patient client — incident phases",
        &patient.phases,
    );

    // Same fleet under the retrying client (second pool slot above): still
    // conserved, retries are re-offered load, and timeouts (if any) are
    // explicit dispositions.
    assert_conserved("fixed/retry", &fixed_retry, trace.len());

    // ── Claim 2: autoscaled fleets recover their SLO post-incident ─────
    // Reactive vs predictive differ only in the scaling policy — another
    // independent pair for the pool.
    let scale_cfgs = [
        base_cfg(ScalePolicy::Reactive {
            scale_up_depth: 8.0,
            scale_down_depth: 2.0,
        }),
        base_cfg(ScalePolicy::Predictive {
            shard_capacity: FAILURE_SHARD_CAPACITY,
            horizon_s: FAILURE_WARMUP_S + 0.1,
            alpha: 0.4,
            period_s: None,
        }),
    ];
    let mut scale_runs = pool
        .par_map_indexed(&scale_cfgs, |cfg| {
            simulate_autoscale_failure(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &batcher,
                cfg,
                &plan,
                &retry_client(),
            )
        })
        .into_iter();
    let reactive = scale_runs.next().expect("reactive report");
    let predictive = scale_runs.next().expect("predictive report");

    let rows: Vec<Vec<String>> = [
        ("fixed-max", &fixed_retry, None),
        ("reactive", &reactive.failure, Some(&reactive)),
        ("predictive", &predictive.failure, Some(&predictive)),
    ]
    .iter()
    .map(|(name, r, auto)| {
        vec![
            name.to_string(),
            match auto {
                Some(a) => format!("{:.1}", a.shard_seconds),
                None => format!("{:.1}", FAILURE_MAX_SHARDS as f64 * r.fleet.makespan_s),
            },
            format!("{}", r.completed),
            format!("{}", r.timed_out),
            format!("{}", r.retries),
            tables::pct(r.slo_attainment),
            format!("{:.0}", r.goodput_seq_s),
            match auto {
                Some(a) => format!("{}", a.scale_events.len()),
                None => "0".into(),
            },
        ]
    })
    .collect();
    println!("Policy comparison through the incident (retrying client)");
    println!(
        "{}",
        tables::render(
            &[
                "config",
                "shard-sec",
                "completed",
                "timed-out",
                "retries",
                "SLO att.",
                "goodput/s",
                "events",
            ],
            &rows,
        )
    );
    print_phases("Reactive — incident phases", &reactive.failure.phases);
    print_phases("Predictive — incident phases", &predictive.failure.phases);

    let recovery_cut = FAILURE_RECOVER_S + FAILURE_WARMUP_S;
    for (name, r) in [("reactive", &reactive), ("predictive", &predictive)] {
        assert_conserved(name, &r.failure, trace.len());
        let pre = slo_over(&trace, &r.failure.outcomes, 0.0, FAILURE_CRASH_S);
        let post = slo_over(&trace, &r.failure.outcomes, recovery_cut, f64::INFINITY);
        println!(
            "{name}: pre-incident SLO {} → post-recovery (≥ {recovery_cut:.1} s) {}",
            tables::pct(pre),
            tables::pct(post)
        );
        assert!(
            post >= pre - FAILURE_RECOVERY_TOLERANCE,
            "{name}: post-incident SLO {post:.3} has not recovered to within \
             {FAILURE_RECOVERY_TOLERANCE} of pre-incident {pre:.3} one warm-up \
             after recovery"
        );
        // The incident is visible in the books: the crash and the
        // recovery both show up as scale events.
        assert!(
            r.scale_events.len() >= 2,
            "{name}: the incident left no trace in the scale-event log"
        );
    }

    // ── Claim 3: unrecovered total outage → valid zero-completion report ─
    let outage_trace: Vec<Request> = (0..40)
        .map(|i| Request {
            arrival_s: i as f64 * 0.01,
            len: 64,
        })
        .collect();
    let outage = simulate_fleet_failure(
        &homogeneous_fleet(&design(99), 1),
        &outage_trace,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::RoundRobin,
        &batcher,
        &FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.0,
                    recover_s: None,
                },
            }],
        },
        &retry_client(),
        FAILURE_SLO_LATENCY_S,
    );
    assert_conserved("outage", &outage, outage_trace.len());
    assert_eq!(outage.completed, 0, "nothing completes in a total outage");
    assert_eq!(outage.timed_out, outage_trace.len());
    assert!(
        !outage.fleet.mean_latency_s.is_nan()
            && !outage.fleet.mean_batch_size.is_nan()
            && !outage.slo_attainment.is_nan()
            && outage
                .phases
                .iter()
                .all(|p| !p.slo_attainment.is_nan() && !p.goodput_seq_s.is_nan()),
        "zero-completion outage report contains NaN"
    );
    println!(
        "Outage check: 0 of {} completed, {} retries spent, report NaN-free ✓\n",
        outage_trace.len(),
        outage.retries
    );

    // ── Claim 4: migrate beats drain for a straggler's large residents ──
    let decode_trace: Vec<DecodeRequest> = (0..FAILURE_DECODE_REQUESTS)
        .map(|i| DecodeRequest {
            arrival_s: i as f64 * FAILURE_DECODE_GAP_S,
            prefill_len: FAILURE_DECODE_PREFILL,
            output_len: FAILURE_DECODE_OUTPUT,
            priority: Priority::Normal,
        })
        .collect();
    let straggler_plan = FaultPlan {
        faults: vec![Fault {
            shard: 0,
            kind: FaultKind::Straggler {
                from_s: FAILURE_STRAGGLER_WINDOW_S.0,
                until_s: FAILURE_STRAGGLER_WINDOW_S.1,
                slowdown: FAILURE_STRAGGLER_SLOWDOWN,
            },
        }],
    };
    let decode_fleet = homogeneous_fleet(&design(99), FAILURE_DECODE_SHARDS);
    let decode_cfg = DecodeConfig {
        max_slots: DECODE_SLOTS,
        ..DecodeConfig::default()
    };
    // Drain vs migrate are independent given the same straggler plan —
    // the last pool pair.
    let responses = [DecodeScaleDown::Drain, DecodeScaleDown::Migrate];
    let mut decode_runs = pool
        .par_map_indexed(&responses, |&response| {
            simulate_decode_failure(
                &decode_fleet,
                &decode_trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                DecodeScheduler::Continuous,
                &decode_cfg,
                &straggler_plan,
                &ClientConfig::patient(),
                response,
                FAILURE_DECODE_SLO_TTFT_S,
            )
        })
        .into_iter();
    let drain = decode_runs.next().expect("drain report");
    let migrate = decode_runs.next().expect("migrate report");
    for (name, r) in [("drain", &drain), ("migrate", &migrate)] {
        assert_eq!(
            r.completed,
            decode_trace.len(),
            "{name}: a straggler must not lose generations"
        );
    }
    let decode_rows: Vec<Vec<String>> = [("drain", &drain), ("migrate", &migrate)]
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                format!("{:.2}", r.affected_drain_s),
                format!("{:.2}", r.decode.fleet.makespan_s),
                format!("{:.0}", r.decode.ttft_p95_s * 1e3),
                tables::pct(r.slo_attainment),
            ]
        })
        .collect();
    println!(
        "Straggler response (decode, ×{FAILURE_STRAGGLER_SLOWDOWN:.0} slow-down, \
         {FAILURE_DECODE_OUTPUT}-token outputs)"
    );
    println!(
        "{}",
        tables::render(
            &[
                "response",
                "victims done (s)",
                "makespan (s)",
                "TTFT p95 (ms)",
                "SLO att.",
            ],
            &decode_rows,
        )
    );
    assert!(
        migrate.affected_drain_s < drain.affected_drain_s,
        "migrating large live residents off a ×{FAILURE_STRAGGLER_SLOWDOWN:.0} \
         straggler ({:.2} s) must beat draining in place ({:.2} s)",
        migrate.affected_drain_s,
        drain.affected_drain_s
    );

    // ── Perf trajectory: wall-times into BENCH_fleet.json (schema 2) ────
    let t0 = std::time::Instant::now();
    let timed = simulate_fleet_failure(
        &fleet,
        &trace,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        &batcher,
        &plan,
        &ClientConfig::patient(),
        FAILURE_SLO_LATENCY_S,
    );
    let wall_s = t0.elapsed().as_secs_f64();
    // Arrivals plus one dispatch and one completion per executed batch —
    // the heap traffic the engine actually processed.
    let events = trace.len() + 2 * timed.fleet.batch_log.len();

    // Multi-cell sweep timed serial vs 4 pool workers: the dispatch ×
    // client grid of the incident scenario. The equality assert is the
    // determinism contract — worker count must never change a report bit.
    let sweep_cells: Vec<(DispatchPolicy, bool)> = DispatchPolicy::ALL
        .iter()
        .flat_map(|&d| [(d, false), (d, true)])
        .collect();
    let run_sweep = |sched: &Scheduler| {
        let t = std::time::Instant::now();
        let reports = sched.par_map_indexed(&sweep_cells, |&(dispatch, retrying)| {
            let client = if retrying {
                retry_client()
            } else {
                ClientConfig::patient()
            };
            simulate_fleet_failure(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                dispatch,
                &batcher,
                &plan,
                &client,
                FAILURE_SLO_LATENCY_S,
            )
        });
        (reports, t.elapsed().as_secs_f64())
    };
    let (sweep_serial, sweep_serial_s) = run_sweep(&Scheduler::serial());
    let (sweep_parallel, sweep_parallel_s) = run_sweep(&Scheduler::new(4));
    assert_eq!(
        sweep_serial, sweep_parallel,
        "4-worker sweep must be bit-identical to the serial sweep"
    );
    println!(
        "parallel sweep: {} cells, serial {sweep_serial_s:.3} s vs 4-worker \
         {sweep_parallel_s:.3} s, bit-identical ✓",
        sweep_cells.len(),
    );

    // Read-migrate-append (shared helper): keep prior entries so the file
    // accumulates a PR-over-PR trajectory, scrubbing legacy single-core
    // speedup records along the way.
    let mut entries: Vec<Value> = benchfile::read_entries("BENCH_fleet.json");
    let seed_str = || Value::Str(format!("{HARNESS_SEED:#x}"));
    entries.push(Value::obj([
        ("bench".into(), Value::Str("fleet-failure".into())),
        (
            "scenario".into(),
            Value::Str(format!(
                "burst+crash {FAILURE_MAX_SHARDS} shards, {FAILURE_REQUESTS} requests"
            )),
        ),
        ("requests".into(), Value::UInt(trace.len() as u64)),
        (
            "batches".into(),
            Value::UInt(timed.fleet.batch_log.len() as u64),
        ),
        ("wall_s".into(), Value::Float(wall_s)),
        (
            "events_per_s".into(),
            Value::Float((events as f64 / wall_s.max(1e-9)).round()),
        ),
        ("seed".into(), seed_str()),
    ]));
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut sweep_entry = vec![
        ("bench".to_string(), Value::Str("parallel-sweep".into())),
        (
            "scenario".to_string(),
            Value::Str("dispatch × client failure grid".into()),
        ),
        ("cells".to_string(), Value::UInt(sweep_cells.len() as u64)),
        ("workers".to_string(), Value::UInt(4)),
        ("host_parallelism".to_string(), Value::UInt(host as u64)),
        ("wall_s_serial".to_string(), Value::Float(sweep_serial_s)),
        (
            "wall_s_parallel".to_string(),
            Value::Float(sweep_parallel_s),
        ),
        ("seed".to_string(), seed_str()),
    ];
    // A speedup figure only means something when the host can actually
    // run the workers side by side; on a single core the "parallel" run
    // just adds scheduling overhead, so record a note instead of a
    // misleading sub-1.0 ratio.
    if host > 1 {
        sweep_entry.push((
            "speedup".to_string(),
            Value::Float(sweep_serial_s / sweep_parallel_s.max(1e-9)),
        ));
    } else {
        sweep_entry.push((
            "speedup_note".to_string(),
            Value::Str(benchfile::SPEEDUP_NOTE.into()),
        ));
    }
    entries.push(Value::obj(sweep_entry));
    match benchfile::write("BENCH_fleet.json", "fleet", entries) {
        Ok(()) => println!("wrote BENCH_fleet.json ({events} events in {wall_s:.3} s)"),
        Err(e) => println!("BENCH_fleet.json not written: {e}"),
    }

    println!(
        "\n(zero-drop conservation, post-incident SLO within {:.0}% of pre under\n\
         reactive and predictive scaling, NaN-free outage report, and\n\
         migrate-beats-drain asserted above)",
        FAILURE_RECOVERY_TOLERANCE * 100.0
    );
}
