//! Ablation: pre-selection bit-width (1-bit sign vs 4-bit affine vs 8-bit
//! near-exact).
//!
//! The paper uses 1-bit for the accuracy evaluation (§5.1) and illustrates
//! 4-bit in Fig. 3. This ablation quantifies the trade: candidate recall,
//! retained softmax mass, task accuracy at Top-30, and the hardware cost
//! of the product LUT.

use lat_bench::tables;
use lat_core::preselect::{preselect_fidelity, PreselectConfig};
use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_tensor::lut::ProductLut;
use lat_tensor::quant::BitWidth;
use lat_tensor::rng::SplitMix64;
use lat_workloads::accuracy::evaluate_on_dataset;
use lat_workloads::datasets::DatasetSpec;
use lat_workloads::task::{TaskConfig, TaskGenerator};

fn main() {
    println!("Ablation — pre-selection bit-width (Top-30)\n");
    let generator = TaskGenerator::new(TaskConfig::default(), 0xB175);
    let dataset = DatasetSpec::squad_v1();
    let mut rng = SplitMix64::new(0xB175);
    let inst = generator.generate(&mut rng, 200);

    let mut rows = Vec::new();
    for bits in BitWidth::all() {
        let fid = preselect_fidelity(&inst.q, &inst.k, PreselectConfig { bits, k: 30 })
            .expect("fidelity");
        let op = SparseAttention::new(SparseAttentionConfig::paper_default().with_bits(bits));
        let acc = evaluate_on_dataset(&op, &generator, &dataset, 150, 0xB175)
            .expect("accuracy")
            .accuracy;
        let lut_entries = ProductLut::new(bits).entries();
        rows.push(vec![
            bits.to_string(),
            format!("{:.1}%", 100.0 * fid.mean_recall),
            format!("{:.1}%", 100.0 * fid.mean_retained_mass),
            format!("{:.1}%", 100.0 * acc),
            lut_entries.to_string(),
            format!("{}x", 8 / bits.bits().max(1)),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &[
                "preselect bits",
                "top-30 recall",
                "retained mass",
                "task accuracy",
                "LUT entries",
                "bit-density vs 8-bit",
            ],
            &rows,
        )
    );
    println!("(1-bit: cheapest hardware, magnitude-blind ranking; 4-bit: 256-entry LUT,");
    println!(" near-exact recall — the paper's Fig. 3 choice for illustration)");
}
