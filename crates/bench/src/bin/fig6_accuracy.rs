//! Fig. 6: accuracy of Top-k sparse attention (1-bit Q/K pre-selection,
//! no fine-tuning) across the paper's ten model × dataset combinations,
//! for k ∈ {baseline, 50, 40, 30, 20, 10}.
//!
//! Our substitution (DESIGN.md): the synthetic attention-retrieval task
//! replaces SQuAD/RTE/MRPC; the measured dense-vs-sparse accuracy *drop*
//! is presented anchored to each model/dataset's published baseline score,
//! so the printed numbers are in the paper's F1/accuracy units.

use lat_bench::scenarios::Scenario;
use lat_bench::tables;
use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_model::attention::DenseAttention;
use lat_workloads::accuracy::{anchored_score, baseline_anchor, evaluate_on_dataset};
use lat_workloads::task::{TaskConfig, TaskGenerator};

const KS: [usize; 5] = [50, 40, 30, 20, 10];
const TRIALS: usize = 150;

fn main() {
    println!("Fig. 6 — Top-k sparse attention accuracy (1-bit pre-selection, no fine-tuning)\n");
    let mut rows = Vec::new();
    let mut worst_drop_at_30 = 0.0f64;

    for (idx, sc) in Scenario::accuracy_eval().iter().enumerate() {
        // Each model/dataset combination gets its own task family. Larger
        // models get more evidence redundancy (robustness in Fig. 6);
        // longer-sequence datasets get more decoys and filler pre-selection
        // pressure (they degrade earlier, as in the paper).
        let mut task_cfg = TaskConfig::default();
        if sc.model.name.contains("large") || sc.model.name.contains("Large") {
            task_cfg.evidence_true = 18;
        } else if sc.model.name.contains("Distil") {
            task_cfg.evidence_true = 14;
        }
        // (Dataset difficulty needs no override: the length distribution
        // itself drives the long-sequence combinations to degrade earlier.)
        let generator = TaskGenerator::new(task_cfg, 0xF16_6000 + idx as u64);
        let seed = 0xACC_0000 + idx as u64;

        let dense = evaluate_on_dataset(&DenseAttention, &generator, &sc.dataset, TRIALS, seed)
            .expect("dense evaluation")
            .accuracy;
        let anchor = baseline_anchor(&sc.model.name, &sc.dataset.name);

        let mut row = vec![sc.label(), format!("{anchor:.1}")];
        for k in KS {
            let op = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(k));
            let acc = evaluate_on_dataset(&op, &generator, &sc.dataset, TRIALS, seed)
                .expect("sparse evaluation")
                .accuracy;
            let score = anchored_score(anchor, dense, acc);
            if k == 30 {
                worst_drop_at_30 = worst_drop_at_30.max(anchor - score);
            }
            row.push(format!("{score:.1}"));
        }
        rows.push(row);
    }

    println!(
        "{}",
        tables::render(
            &[
                "model / dataset",
                "Baseline",
                "Top-50",
                "Top-40",
                "Top-30",
                "Top-20",
                "Top-10"
            ],
            &rows,
        )
    );
    println!(
        "worst-case drop at Top-30: {worst_drop_at_30:.1} points  (paper: all evaluations < 2 points at Top-30)"
    );
    println!("(each score = published baseline minus our measured dense→sparse drop; {TRIALS} trials per cell)");
}
