//! Fig. 4: attention kernel loop fusion — fused (single II=1 loop with the
//! scale/mask/exp epilogue riding on the last reduction step) vs unfused
//! (separate score, scale, mask and exp passes).
//!
//! Prints cycle counts and speedups across head dimensions, candidate
//! counts and unroll factors, and verifies on real data that both kernels
//! produce identical results.

use lat_bench::tables;
use lat_core::fused::{fused_attention_row, unfused_attention_row, FusionGain};
use lat_tensor::rng::SplitMix64;

fn main() {
    println!("Fig. 4 — attention kernel loop fusion\n");

    // Numerical equivalence demonstration on one concrete row.
    let mut rng = SplitMix64::new(4);
    let d = 64;
    let k = 30;
    let ks = rng.gaussian_matrix(k, d, 1.0);
    let q: Vec<f32> = (0..d).map(|_| rng.next_gaussian()).collect();
    let mask = vec![false; k];
    let fused = fused_attention_row(&q, &ks, &mask, 4).expect("valid dims");
    let unfused = unfused_attention_row(&q, &ks, &mask, 4).expect("valid dims");
    let max_err = fused
        .exp_scores
        .iter()
        .zip(&unfused.exp_scores)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("numerical check (d={d}, k={k}): max |fused - unfused| = {max_err:.2e}\n");

    let mut rows = Vec::new();
    for (d, k) in [(64usize, 10usize), (64, 30), (64, 50), (128, 30), (64, 128)] {
        for unroll in [1usize, 2, 4, 8] {
            let g = FusionGain::compute(d, k, unroll);
            rows.push(vec![
                d.to_string(),
                k.to_string(),
                unroll.to_string(),
                g.fused.to_string(),
                g.unfused.to_string(),
                format!("{:.2}x", g.speedup()),
            ]);
        }
    }
    println!(
        "{}",
        tables::render(
            &[
                "head dim",
                "k",
                "unroll p",
                "fused cyc",
                "unfused cyc",
                "fusion speedup"
            ],
            &rows,
        )
    );
    println!("(epilogue passes eliminated: scale, mask, exp — 3 per score row)\n");

    // Head-level fusion (Fig. 2(a) Stage 2.2: head₁/head₂ share the fused
    // pipeline, paying one fill for the whole group).
    println!("head-level fusion (one pipeline fill per group of heads):");
    let mut rows = Vec::new();
    for h in [1usize, 2, 4, 12, 16] {
        let g = lat_core::fused::head_fusion_gain(h, 64, 30, 2);
        rows.push(vec![
            h.to_string(),
            g.fused.to_string(),
            g.unfused.to_string(),
            format!("{:.3}x", g.speedup()),
        ]);
    }
    println!(
        "{}",
        tables::render(&["heads", "fused cyc", "separate cyc", "speedup"], &rows)
    );
}
