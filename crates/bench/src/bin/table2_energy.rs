//! Table 2: throughput and energy-efficiency comparison.
//!
//! The "Ours FPGA" row is measured by the simulator (BERT-base across the
//! three datasets, batch 16, Top-30, length-aware scheduling, equivalent-
//! throughput accounting); the GPU/FPGA/ASIC comparators are the published
//! numbers the paper quotes, kept as constants in `lat_hwsim::energy`.

use lat_bench::scenarios::{geomean, Scenario, DEFAULT_BATCHES};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::energy::{literature_rows, ours_row};
use lat_hwsim::spec::FpgaSpec;
use lat_model::attention::DenseAttention;
use lat_model::graph::AttentionMode;
use lat_workloads::accuracy::evaluate_on_dataset;
use lat_workloads::task::{TaskConfig, TaskGenerator};

fn main() {
    println!("Table 2 — energy efficiency & throughput comparison\n");

    // Measure "Ours": equivalent GOPS and GOP/J over the BERT-base
    // hardware-evaluation scenarios.
    let mut gops = Vec::new();
    let mut eff = Vec::new();
    for sc in Scenario::hardware_eval()
        .into_iter()
        .filter(|s| s.model.name == "BERT-base")
    {
        let design = AcceleratorDesign::new(
            &sc.model,
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            sc.dataset.avg_len,
        );
        for batch in sc.sample_batches(DEFAULT_BATCHES) {
            let r = design.run_batch(&batch, SchedulingPolicy::LengthAware);
            gops.push(r.equivalent_gops());
            eff.push(r.equivalent_gop_per_j());
        }
    }
    let ours_gops = geomean(&gops);
    let ours_eff = geomean(&eff);

    // Measure the average accuracy drop at Top-30 on the synthetic task.
    let generator = TaskGenerator::new(TaskConfig::default(), 0x7AB2);
    let mut drops = Vec::new();
    for (i, sc) in Scenario::accuracy_eval().iter().enumerate() {
        let seed = 0x7AB2_0000 + i as u64;
        let dense = evaluate_on_dataset(&DenseAttention, &generator, &sc.dataset, 100, seed)
            .expect("dense eval")
            .accuracy;
        let sparse_op = SparseAttention::new(SparseAttentionConfig::paper_default());
        let sparse = evaluate_on_dataset(&sparse_op, &generator, &sc.dataset, 100, seed)
            .expect("sparse eval")
            .accuracy;
        drops.push(((dense - sparse) * 100.0).max(0.0));
    }
    let mean_drop = drops.iter().sum::<f64>() / drops.len() as f64;

    let mut rows_data = literature_rows();
    rows_data.insert(2, ours_row(ours_gops, ours_eff, mean_drop));

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("{}{}", r.work, if r.measured { " (measured)" } else { "" }),
                format!("{:.0}", r.throughput_gops),
                r.gop_per_j
                    .map(|x| format!("{x:.0}"))
                    .unwrap_or_else(|| "N/A".into()),
                r.accuracy_drop_pct
                    .map(|x| format!("{x:.1}"))
                    .unwrap_or_else(|| "N/A".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &[
                "Work/platform",
                "Throughput (GOPS)",
                "Energy eff. (GOP/J)",
                "Acc. drop (%)"
            ],
            &rows,
        )
    );
    let gpu_eff = 8.0;
    println!(
        "ours vs GPU RTX 6000 energy efficiency: {:.1}x  (paper: >4x vs CUBLAS-optimized GPU)",
        ours_eff / gpu_eff
    );
    println!("(paper's 'Ours FPGA' row: 3600 GOPS, 102 GOP/J, 1.8% drop)");
}
