//! Fig. 7(a): end-to-end cross-platform throughput comparison.
//!
//! For each scenario (BERT-base × SQuAD/RTE/MRPC, BERT-large × SQuAD),
//! batches of 16 sequences are drawn from the dataset's length
//! distribution and executed on:
//!
//! - CPU (Xeon Gold 5218), Jetson TX2 and RTX 6000 — analytical platform
//!   models, padded dense execution;
//! - FPGA baseline — the simulated accelerator with dense attention and
//!   pad-to-max scheduling (no co-design);
//! - FPGA length-aware — the full co-design (1-bit Top-30 sparse attention
//!   + length-aware dynamic pipelining).
//!
//! Prints per-scenario speedups normalized to the CPU, plus the geomean
//! row the paper quotes (80.2× / 41.3× / 2.6× / 3.1× for CPU / TX2 /
//! RTX 6000 / FPGA-baseline respectively).

use lat_bench::scenarios::{geomean, Scenario, DEFAULT_BATCHES, HARNESS_SEED};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::spec::FpgaSpec;
use lat_model::graph::AttentionMode;
use lat_platforms::Platform;

fn main() {
    println!("Fig. 7(a) — end-to-end cross-platform throughput (seed {HARNESS_SEED:#x})\n");
    let platforms = Platform::all_presets();
    let mut rows = Vec::new();
    let mut per_platform_speedups: Vec<Vec<f64>> = vec![Vec::new(); 5];

    for sc in Scenario::hardware_eval() {
        let batches = sc.sample_batches(DEFAULT_BATCHES);
        let ours = AcceleratorDesign::new(
            &sc.model,
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            sc.dataset.avg_len,
        );
        // The dense baseline pads everything to the dataset maximum, so its
        // stage allocation is tuned for that padded length.
        let baseline = AcceleratorDesign::new(
            &sc.model,
            AttentionMode::Dense,
            FpgaSpec::alveo_u280(),
            sc.dataset.max_len,
        );

        // Mean batch latency per platform.
        let mut t = [0.0f64; 5]; // cpu, tx2, gpu, fpga-base, fpga-ours
        for batch in &batches {
            for (i, p) in platforms.iter().enumerate() {
                t[i] += p.batch_seconds(&sc.model, batch);
            }
            t[3] += baseline
                .run_batch(batch, SchedulingPolicy::PadToMax)
                .seconds;
            t[4] += ours.run_batch(batch, SchedulingPolicy::LengthAware).seconds;
        }
        for x in &mut t {
            *x /= batches.len() as f64;
        }

        // Speedup normalized to CPU (CPU = 1.0), as the figure plots.
        let cpu = t[0];
        let mut row = vec![sc.label()];
        for (i, &ti) in t.iter().enumerate() {
            let s = cpu / ti;
            row.push(tables::speedup(s));
            per_platform_speedups[i].push(t[i] / t[4]); // FPGA-ours vs this
        }
        rows.push(row);
    }

    println!(
        "{}",
        tables::render(
            &[
                "scenario",
                "CPU",
                "Jetson TX2",
                "RTX 6000",
                "FPGA baseline",
                "FPGA length-aware",
            ],
            &rows,
        )
    );

    println!("Geomean speedup of FPGA length-aware over each platform:");
    let names = ["CPU", "Jetson TX2", "RTX 6000", "FPGA baseline"];
    let paper = [80.2, 41.3, 2.6, 3.1];
    for (i, name) in names.iter().enumerate() {
        let g = geomean(&per_platform_speedups[i]);
        println!(
            "  vs {:14} {:>8}   (paper: {:.1}x)",
            name,
            tables::speedup(g),
            paper[i]
        );
    }
}
