//! Ablation: disaggregated prefill/decode serving vs colocated
//! continuous batching, iso-hardware ([`DISAGG_COLOCATED_SHARDS`] shards
//! either way), on a prefill-heavy QA workload (SQuAD prompts, short
//! continuations).
//!
//! The grid crosses the KV-interconnect class (NVLink-class cheap vs
//! congested-Ethernet-class costly) with the shared-prefix cache (warm,
//! every group resident vs disabled). Three claims, asserted while the
//! table prints:
//!
//! 1. **Disaggregation wins its regime** — with a cheap interconnect and
//!    a warm prefix cache, the split fleet beats the colocated baseline
//!    on BOTH goodput and p95 TTFT: prefill shards see no decode-slot
//!    contention, and cache hits skip most of each grouped prompt.
//! 2. **Crossover** — with a costly interconnect and no cache, the
//!    colocated baseline wins both metrics back: every handoff stalls
//!    the decode pool for ~a request's service time, and full-price
//!    prefill on half the fleet queues deeper than prefill on all of it.
//! 3. **Accounting** — every cell conserves requests; warm-cache cells
//!    hit at the grouped fraction after one compulsory miss per group;
//!    handoffs equal multi-token requests whenever transfers happen.
//!
//! Deterministic under `HARNESS_SEED`.

use lat_bench::scenarios::{
    disagg_outputs, disagg_prompts, DISAGG_CACHE_CAPACITY, DISAGG_CHEAP_BASE_S,
    DISAGG_CHEAP_PER_TOKEN_S, DISAGG_COLOCATED_SHARDS, DISAGG_COSTLY_BASE_S,
    DISAGG_COSTLY_PER_TOKEN_S, DISAGG_DECODE_SHARDS, DISAGG_GROUPED_FRACTION,
    DISAGG_PREFILL_SHARDS, DISAGG_PREFIX_GROUPS, DISAGG_PREFIX_LEN, DISAGG_RATE, DISAGG_REQUESTS,
    DISAGG_SLOTS, HARNESS_SEED,
};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::decode::{decode_trace, simulate_decode, DecodeConfig, DecodeScheduler, KvTransfer};
use lat_hwsim::disagg::{simulate_disaggregated, DisaggConfig};
use lat_hwsim::fleet::{homogeneous_fleet, DispatchPolicy};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::prefix::PrefixProfile;

fn design() -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        disagg_prompts().avg_len,
    )
}

fn cheap_wire() -> KvTransfer {
    KvTransfer::Copy {
        base_s: DISAGG_CHEAP_BASE_S,
        per_token_s: DISAGG_CHEAP_PER_TOKEN_S,
    }
}

fn costly_wire() -> KvTransfer {
    KvTransfer::Copy {
        base_s: DISAGG_COSTLY_BASE_S,
        per_token_s: DISAGG_COSTLY_PER_TOKEN_S,
    }
}

/// One grid arm: the colocated baseline or a disaggregated cell.
#[derive(Clone, Copy)]
enum Arm {
    Colocated,
    Disagg {
        label: &'static str,
        transfer: KvTransfer,
        capacity: usize,
    },
}

/// The per-arm summary every row and claim reads.
struct Outcome {
    label: String,
    goodput_tok_s: f64,
    ttft_p95_s: f64,
    makespan_s: f64,
    completed: usize,
    transfers: usize,
    hits: usize,
    misses: usize,
    tokens_saved: u64,
}

fn main() {
    let prompts = disagg_prompts();
    let outputs = disagg_outputs();
    let cfg = DecodeConfig {
        max_slots: DISAGG_SLOTS,
        ttft_deadline_s: f64::INFINITY,
    };
    let trace = decode_trace(
        &prompts,
        &outputs,
        0.0,
        DISAGG_RATE,
        DISAGG_REQUESTS,
        HARNESS_SEED,
    );
    let profile = PrefixProfile {
        num_groups: DISAGG_PREFIX_GROUPS,
        prefix_len: DISAGG_PREFIX_LEN,
        grouped_fraction: DISAGG_GROUPED_FRACTION,
    };
    let prefixes = profile.assign(trace.len(), HARNESS_SEED);
    let grouped = prefixes.iter().filter(|p| p.is_some()).count();
    let distinct_groups = prefixes
        .iter()
        .flatten()
        .map(|g| g.group)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let multi = trace.iter().filter(|r| r.output_len > 1).count();
    let pool = Scheduler::from_env();
    println!(
        "Ablation — disaggregated prefill/decode vs colocated ({} prompts, {} outputs,\n\
         {} requests at {:.0}/s, {}P+{}D vs {} colocated shards, {} groups × {}-token prefix,\n\
         {:.0}% grouped, seed {HARNESS_SEED:#x}, {} workers)\n",
        prompts.name,
        outputs.name,
        DISAGG_REQUESTS,
        DISAGG_RATE,
        DISAGG_PREFILL_SHARDS,
        DISAGG_DECODE_SHARDS,
        DISAGG_COLOCATED_SHARDS,
        DISAGG_PREFIX_GROUPS,
        DISAGG_PREFIX_LEN,
        DISAGG_GROUPED_FRACTION * 100.0,
        pool.parallelism(),
    );
    let base = design();
    let fleet = homogeneous_fleet(&base, DISAGG_COLOCATED_SHARDS);
    let (prefill_pool, decode_pool) = fleet.split_at(DISAGG_PREFILL_SHARDS);

    let arms = [
        Arm::Colocated,
        Arm::Disagg {
            label: "disagg cheap wire + warm cache",
            transfer: cheap_wire(),
            capacity: DISAGG_CACHE_CAPACITY,
        },
        Arm::Disagg {
            label: "disagg cheap wire, no cache",
            transfer: cheap_wire(),
            capacity: 0,
        },
        Arm::Disagg {
            label: "disagg costly wire + warm cache",
            transfer: costly_wire(),
            capacity: DISAGG_CACHE_CAPACITY,
        },
        Arm::Disagg {
            label: "disagg costly wire, no cache",
            transfer: costly_wire(),
            capacity: 0,
        },
    ];
    let outcomes = pool.par_map_indexed(&arms, |arm| match *arm {
        Arm::Colocated => {
            let r = simulate_decode(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                DecodeScheduler::Continuous,
                &cfg,
            );
            Outcome {
                label: "colocated continuous".into(),
                goodput_tok_s: r.goodput_tok_s,
                ttft_p95_s: r.ttft_p95_s,
                makespan_s: r.fleet.makespan_s,
                completed: r.fleet.completed,
                transfers: 0,
                hits: 0,
                misses: 0,
                tokens_saved: 0,
            }
        }
        Arm::Disagg {
            label,
            transfer,
            capacity,
        } => {
            let r = simulate_disaggregated(
                prefill_pool,
                decode_pool,
                &trace,
                &prefixes,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                DecodeScheduler::Continuous,
                &cfg,
                &DisaggConfig {
                    transfer,
                    prefix_cache_capacity: capacity,
                },
            );
            Outcome {
                label: label.into(),
                goodput_tok_s: r.decode.goodput_tok_s,
                ttft_p95_s: r.decode.ttft_p95_s,
                makespan_s: r.decode.fleet.makespan_s,
                completed: r.decode.fleet.completed,
                transfers: r.transfers,
                hits: r.prefix.hits,
                misses: r.prefix.misses,
                tokens_saved: r.prefix.tokens_saved,
            }
        }
    });

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                format!("{:.0}", o.goodput_tok_s),
                format!("{:.1}", o.ttft_p95_s * 1e3),
                format!("{:.3}", o.makespan_s),
                format!("{}", o.transfers),
                format!("{}/{}", o.hits, o.hits + o.misses),
                format!("{}", o.tokens_saved),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &[
                "arm",
                "goodput (tok/s)",
                "p95 TTFT (ms)",
                "makespan (s)",
                "handoffs",
                "cache hits",
                "tokens saved",
            ],
            &rows,
        )
    );

    // ── Claim 3: accounting, on every arm ───────────────────────────────
    let colo = &outcomes[0];
    let best = &outcomes[1];
    let worst = &outcomes[4];
    for o in &outcomes {
        assert_eq!(
            o.completed, DISAGG_REQUESTS,
            "{}: conservation violated",
            o.label
        );
    }
    for o in &outcomes[1..] {
        assert_eq!(
            o.transfers, multi,
            "{}: every multi-token request crosses the wire exactly once",
            o.label
        );
    }
    for o in [&outcomes[1], &outcomes[3]] {
        assert_eq!(
            o.hits,
            grouped - distinct_groups,
            "{}: warm cache must hit every grouped request after one \
             compulsory miss per group",
            o.label
        );
        assert!(o.tokens_saved > 0, "{}: hits saved no tokens", o.label);
    }
    for o in [&outcomes[2], &outcomes[4]] {
        assert_eq!(o.hits, 0, "{}: capacity 0 must never hit", o.label);
        assert_eq!(o.tokens_saved, 0, "{}: capacity 0 saved tokens", o.label);
    }

    // ── Claim 1: disaggregation wins its regime on both metrics ─────────
    assert!(
        best.goodput_tok_s > colo.goodput_tok_s,
        "cheap wire + warm cache: disagg goodput {:.0} !> colocated {:.0}",
        best.goodput_tok_s,
        colo.goodput_tok_s
    );
    assert!(
        best.ttft_p95_s < colo.ttft_p95_s,
        "cheap wire + warm cache: disagg p95 TTFT {:.1} ms !< colocated {:.1} ms",
        best.ttft_p95_s * 1e3,
        colo.ttft_p95_s * 1e3
    );

    // ── Claim 2: the crossover — colocated wins the hostile regime ──────
    assert!(
        colo.goodput_tok_s > worst.goodput_tok_s,
        "costly wire, no cache: colocated goodput {:.0} !> disagg {:.0}",
        colo.goodput_tok_s,
        worst.goodput_tok_s
    );
    assert!(
        colo.ttft_p95_s < worst.ttft_p95_s,
        "costly wire, no cache: colocated p95 TTFT {:.1} ms !< disagg {:.1} ms",
        colo.ttft_p95_s * 1e3,
        worst.ttft_p95_s * 1e3
    );

    println!(
        "Crossover: disaggregation {} goodput ({} p95 TTFT) on the cheap wire with a warm cache;\n\
         colocated takes both back on the costly wire without one ({} goodput, {} p95 TTFT).",
        tables::speedup(best.goodput_tok_s / colo.goodput_tok_s),
        tables::speedup(colo.ttft_p95_s / best.ttft_p95_s),
        tables::speedup(colo.goodput_tok_s / worst.goodput_tok_s),
        tables::speedup(worst.ttft_p95_s / colo.ttft_p95_s),
    );
}
