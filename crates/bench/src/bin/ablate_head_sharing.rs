//! Ablation: per-head candidate selection (the paper's design) vs a
//! head-shared candidate set (SpAtten-style token-level selection).
//!
//! Sharing one candidate set across all heads cuts the Stage-2.1 gather
//! traffic by the head count but loses per-head specialization; this
//! harness measures the recall cost on a multi-head attention instance
//! and the traffic saving.

use lat_bench::tables;
use lat_core::preselect::{preselect, preselect_shared_across_heads, PreselectConfig};
use lat_core::topk::{recall, top_k_f32};
use lat_tensor::quant::BitWidth;
use lat_tensor::rng::SplitMix64;
use lat_tensor::Matrix;

fn main() {
    println!("Ablation — per-head vs head-shared candidate selection\n");
    let heads = 12;
    let n = 128;
    let d_head = 64;
    let mut rng = SplitMix64::new(0x4EAD);

    // Heads with correlated queries (a realistic regime: heads attend to
    // overlapping but not identical token sets).
    let common_q = rng.gaussian_matrix(n, d_head, 0.7);
    let common_k = rng.gaussian_matrix(n, d_head, 0.7);
    let q_heads: Vec<Matrix> = (0..heads)
        .map(|_| {
            common_q
                .add(&rng.gaussian_matrix(n, d_head, 0.7))
                .expect("same shape")
        })
        .collect();
    let k_heads: Vec<Matrix> = (0..heads)
        .map(|_| {
            common_k
                .add(&rng.gaussian_matrix(n, d_head, 0.7))
                .expect("same shape")
        })
        .collect();

    let mut rows = Vec::new();
    for k in [10usize, 30, 50] {
        let cfg = PreselectConfig {
            bits: BitWidth::One,
            k,
        };

        // Per-head: each head selects and gathers its own candidates.
        let mut per_head_recall = 0.0f64;
        for (q, km) in q_heads.iter().zip(&k_heads) {
            let sel = preselect(q, km, cfg).expect("preselect");
            let exact = q.matmul_transposed(km).expect("shapes agree");
            for i in 0..n {
                let reference = top_k_f32(exact.row(i), k);
                per_head_recall += recall(&sel.candidates[i], &reference);
            }
        }
        per_head_recall /= (heads * n) as f64;

        // Shared: one candidate set per query row for all heads.
        let shared = preselect_shared_across_heads(&q_heads, &k_heads, cfg).expect("preselect");
        let mut shared_recall = 0.0f64;
        for (q, km) in q_heads.iter().zip(&k_heads) {
            let exact = q.matmul_transposed(km).expect("shapes agree");
            for i in 0..n {
                let reference = top_k_f32(exact.row(i), k);
                shared_recall += recall(&shared.candidates[i], &reference);
            }
        }
        shared_recall /= (heads * n) as f64;

        // Gather traffic: per-head loads h·n·k rows; shared loads n·k.
        let per_head_rows = heads * n * k;
        let shared_rows = n * k;
        rows.push(vec![
            k.to_string(),
            format!("{:.1}%", 100.0 * per_head_recall),
            format!("{:.1}%", 100.0 * shared_recall),
            per_head_rows.to_string(),
            shared_rows.to_string(),
            format!("{heads}x"),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &[
                "k",
                "per-head recall",
                "shared recall",
                "per-head gathers",
                "shared gathers",
                "traffic saving",
            ],
            &rows,
        )
    );
    println!("(the paper keeps per-head selection: recall is what protects Fig. 6 accuracy)");
}
