//! Ablation: multi-shard fleet serving on the paper's traffic mix.
//!
//! Two questions the single-accelerator serving ablation cannot answer:
//!
//! 1. **Scaling** — does throughput grow monotonically as homogeneous
//!    shards are added under saturating load?
//! 2. **Dispatch** — on a heterogeneous fleet (one short-tuned shard,
//!    three long-tuned), does length-binned routing beat round-robin tail
//!    latency on the mixed Table 1 workload, and how much of that gap does
//!    the length-aware schedule itself close?
//!
//! Deterministic under `HARNESS_SEED`; the monotone-scaling and
//! binned-beats-round-robin claims are asserted, not just printed.

use lat_bench::scenarios::{
    fleet_mix, FLEET_BIN_TUNINGS, FLEET_DISPATCH_RATES, FLEET_REQUESTS, FLEET_SATURATING_RATE,
    FLEET_SHARD_COUNTS, HARNESS_SEED,
};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;

fn design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn main() {
    let mix = fleet_mix();
    let pool = Scheduler::from_env();
    println!(
        "Ablation — fleet serving (BERT-base, {} traffic, {} requests, seed {HARNESS_SEED:#x}, \
         {} workers)\n",
        lat_workloads::datasets::LengthSampler::label(&mix),
        FLEET_REQUESTS,
        pool.parallelism(),
    );

    // ── 1. Homogeneous scaling under saturating load ────────────────────
    let base = design(99); // tuned near the mix's expected average length
    let trace = poisson_trace(&mix, FLEET_SATURATING_RATE, FLEET_REQUESTS, HARNESS_SEED);
    // Sweep cells are independent and seed-deterministic: fan them across
    // the pool, then assert the cross-cell monotonicity claim serially
    // over the index-ordered results.
    let reports = pool.par_map_indexed(&FLEET_SHARD_COUNTS, |&n| {
        simulate_fleet(
            &homogeneous_fleet(&base, n),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
        )
    });
    let mut rows = Vec::new();
    let mut last_thr = 0.0f64;
    for (&n, r) in FLEET_SHARD_COUNTS.iter().zip(&reports) {
        assert!(
            r.throughput_seq_s > last_thr,
            "throughput must scale monotonically with shards: {n} shards {} !> {last_thr}",
            r.throughput_seq_s
        );
        last_thr = r.throughput_seq_s;
        let util = r.shards.iter().map(|s| s.utilization).sum::<f64>() / n as f64;
        rows.push(vec![
            format!("{n}"),
            format!("{:.1}", r.throughput_seq_s),
            format!("{:.1}", r.mean_batch_size),
            tables::pct(util),
            format!("{:.0}", r.p50_latency_s * 1e3),
            format!("{:.0}", r.p95_latency_s * 1e3),
        ]);
    }
    println!(
        "Homogeneous scaling (JSQ, length-aware, offered load {FLEET_SATURATING_RATE:.0} seq/s)"
    );
    println!(
        "{}",
        tables::render(
            &[
                "shards",
                "throughput (seq/s)",
                "batch size",
                "mean util",
                "p50 (ms)",
                "p95 (ms)",
            ],
            &rows,
        )
    );

    // ── 2. Dispatch policy × scheduling policy on the binned fleet ──────
    let fleet: Vec<AcceleratorDesign> = FLEET_BIN_TUNINGS.iter().map(|&t| design(t)).collect();
    println!(
        "Heterogeneous fleet: shards tuned for s_avg {FLEET_BIN_TUNINGS:?} (1 short + 3 long bins)"
    );
    for policy in [SchedulingPolicy::LengthAware, SchedulingPolicy::PadToMax] {
        // rate × dispatch grid: one pool cell per (rate, dispatch) pair.
        let cells: Vec<(f64, DispatchPolicy)> = FLEET_DISPATCH_RATES
            .iter()
            .flat_map(|&rate| DispatchPolicy::ALL.iter().map(move |&d| (rate, d)))
            .collect();
        let grid = pool.par_map_indexed(&cells, |&(rate, d)| {
            let trace = poisson_trace(&mix, rate, FLEET_REQUESTS, HARNESS_SEED);
            simulate_fleet(&fleet, &trace, policy, d, &BatcherConfig::default())
        });
        let mut rows = Vec::new();
        for (ri, &rate) in FLEET_DISPATCH_RATES.iter().enumerate() {
            let reports =
                &grid[ri * DispatchPolicy::ALL.len()..(ri + 1) * DispatchPolicy::ALL.len()];
            let (rr, jsq, binned) = (&reports[0], &reports[1], &reports[2]);
            assert!(
                binned.p95_latency_s < rr.p95_latency_s,
                "{policy} @ {rate} seq/s: length-binned p95 {} !< round-robin {}",
                binned.p95_latency_s,
                rr.p95_latency_s
            );
            rows.push(vec![
                format!("{rate:.0}"),
                format!("{:.0}", rr.p95_latency_s * 1e3),
                format!("{:.0}", jsq.p95_latency_s * 1e3),
                format!("{:.0}", binned.p95_latency_s * 1e3),
                tables::speedup(rr.p95_latency_s / binned.p95_latency_s),
                format!("{:.0}", binned.throughput_seq_s),
            ]);
        }
        println!("Dispatch policies under the {policy} schedule");
        println!(
            "{}",
            tables::render(
                &[
                    "load (seq/s)",
                    "RR p95 (ms)",
                    "JSQ p95 (ms)",
                    "binned p95 (ms)",
                    "binned vs RR",
                    "binned thr",
                ],
                &rows,
            )
        );
    }
    println!(
        "(monotone scaling and binned<RR p95 asserted above; length-aware scheduling\n\
         shrinks the routing gap — the co-design tolerates mixed lengths that wreck\n\
         a padding execution engine)"
    );
}
