//! Ablation: the paper's quantized Top-k sparse attention vs the §2
//! related-work alternatives at *equal per-query budget* — fixed windowed+
//! global attention (Big Bird-style) and random key sampling — on the
//! synthetic retrieval task.
//!
//! The paper's critique of fixed patterns ("requires a pre-determined
//! attention mask that lacks generality") shows up directly: the retrieval
//! task's evidence lands at arbitrary positions, which a positional window
//! cannot cover, while content-based Top-k selection finds it.

use lat_bench::tables;
use lat_core::baselines::{RandomSamplingAttention, WindowedAttention};
use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_model::attention::DenseAttention;
use lat_workloads::accuracy::evaluate_on_dataset;
use lat_workloads::datasets::DatasetSpec;
use lat_workloads::task::{TaskConfig, TaskGenerator};

const TRIALS: usize = 150;

fn main() {
    println!(
        "Ablation — sparse-attention operators at equal budget (task accuracy, {TRIALS} trials)\n"
    );
    let generator = TaskGenerator::new(TaskConfig::default(), 0xBA5E);
    let mut rows = Vec::new();

    for dataset in DatasetSpec::paper_datasets() {
        let seed = 0x000B_A5E0 + dataset.name.len() as u64;
        let dense = evaluate_on_dataset(&DenseAttention, &generator, &dataset, TRIALS, seed)
            .expect("dense eval")
            .accuracy;
        for k in [10usize, 30] {
            let ours = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(k));
            let windowed = WindowedAttention::with_budget(k);
            let random = RandomSamplingAttention { k, seed: 77 };
            let a_ours = evaluate_on_dataset(&ours, &generator, &dataset, TRIALS, seed)
                .expect("ours eval")
                .accuracy;
            let a_win = evaluate_on_dataset(&windowed, &generator, &dataset, TRIALS, seed)
                .expect("windowed eval")
                .accuracy;
            let a_rand = evaluate_on_dataset(&random, &generator, &dataset, TRIALS, seed)
                .expect("random eval")
                .accuracy;
            rows.push(vec![
                dataset.name.clone(),
                k.to_string(),
                format!("{:.1}%", 100.0 * dense),
                format!("{:.1}%", 100.0 * a_ours),
                format!("{:.1}%", 100.0 * a_win),
                format!("{:.1}%", 100.0 * a_rand),
            ]);
        }
    }
    println!(
        "{}",
        tables::render(
            &[
                "dataset",
                "budget k",
                "dense",
                "quantized top-k (ours)",
                "windowed+global",
                "random sampling",
            ],
            &rows,
        )
    );
    println!("(equal per-query key budget; content-based selection vs fixed/random patterns)");
    println!("note: at k=10 the 1-bit ranking's magnitude blindness lets sign-matched decoys");
    println!("crowd out evidence, so even unbiased random sampling can win — at the paper's");
    println!("operating point (k=30) content-based top-k dominates both baselines.");
}
