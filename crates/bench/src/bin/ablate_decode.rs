//! Ablation: generative decode (continuous batching + preemption) on the
//! fleet engine, serving the paper's traffic mix as prompts.
//!
//! Two claims the encoder-serving ablations cannot make:
//!
//! 1. **Goodput** — at saturating load, iteration-level (continuous)
//!    batching sustains strictly higher token goodput than static batching,
//!    because a static batch's freed slots idle until its longest member
//!    drains.
//! 2. **Priorities** — deadline-driven preemption lowers the
//!    high-priority class's p95 time-to-first-token versus plain continuous
//!    batching, at bounded cost to the normal class.
//!
//! Deterministic under `HARNESS_SEED`; both claims are asserted while the
//! tables print, not just displayed.

use lat_bench::scenarios::{
    decode_mix, DECODE_HIGH_FRACTION, DECODE_RATES, DECODE_REQUESTS, DECODE_SATURATING_RATE,
    DECODE_SHARD_COUNTS, DECODE_SLOTS, DECODE_TTFT_DEADLINE_S, HARNESS_SEED,
};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::decode::{
    decode_trace, simulate_decode, DecodeConfig, DecodeReport, DecodeScheduler, Priority,
};
use lat_hwsim::fleet::{homogeneous_fleet, DispatchPolicy};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_tensor::stats::percentile;
use lat_workloads::datasets::LengthSampler;

fn design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

/// p95 TTFT of the high-priority class, straight from the report.
fn high_ttft_p95(report: &DecodeReport) -> f64 {
    report
        .high_ttft_p95_s
        .expect("high-priority traffic in the mix")
}

/// p95 TTFT of the normal class, computed from the per-request outcomes
/// (the report centralizes only the high-priority slice).
fn normal_ttft_p95(report: &DecodeReport, trace: &[lat_hwsim::decode::DecodeRequest]) -> f64 {
    let ttfts: Vec<f64> = trace
        .iter()
        .zip(&report.requests)
        .filter(|(r, _)| r.priority == Priority::Normal)
        .map(|(_, o)| o.ttft_s)
        .collect();
    percentile(&ttfts, 0.95).expect("normal-priority traffic in the mix")
}

fn main() {
    let prefill = decode_mix();
    let output = prefill.decode_output();
    let cfg = DecodeConfig {
        max_slots: DECODE_SLOTS,
        ttft_deadline_s: DECODE_TTFT_DEADLINE_S,
    };
    let pool = Scheduler::from_env();
    println!(
        "Ablation — generative decode (BERT-base, {} prompts, {} outputs,\n\
         {} requests, {} slots/shard, {:.0}% high-priority, seed {HARNESS_SEED:#x}, {} workers)\n",
        prefill.label(),
        output.label(),
        DECODE_REQUESTS,
        DECODE_SLOTS,
        DECODE_HIGH_FRACTION * 100.0,
        pool.parallelism(),
    );
    let base = design(99); // tuned near the prompt mix's expected average

    // ── 1. Scheduler × shard count at saturating load ───────────────────
    let trace = decode_trace(
        &prefill,
        &output,
        DECODE_HIGH_FRACTION,
        DECODE_SATURATING_RATE,
        DECODE_REQUESTS,
        HARNESS_SEED,
    );
    // shard-count × scheduler grid: every cell is independent — fan it
    // across the pool, then make the cross-scheduler goodput claim
    // serially over the index-ordered results.
    let cells: Vec<(usize, DecodeScheduler)> = DECODE_SHARD_COUNTS
        .iter()
        .flat_map(|&n| DecodeScheduler::ALL.into_iter().map(move |s| (n, s)))
        .collect();
    let grid = pool.par_map_indexed(&cells, |&(n, scheduler)| {
        simulate_decode(
            &homogeneous_fleet(&base, n),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            scheduler,
            &cfg,
        )
    });
    let mut rows = Vec::new();
    let mut goodput_static = f64::NAN;
    for (&(n, scheduler), r) in cells.iter().zip(&grid) {
        {
            assert_eq!(r.fleet.completed, DECODE_REQUESTS);
            match scheduler {
                DecodeScheduler::Static => goodput_static = r.goodput_tok_s,
                DecodeScheduler::Continuous => assert!(
                    r.goodput_tok_s > goodput_static,
                    "{n} shards: continuous goodput {} !> static {goodput_static}",
                    r.goodput_tok_s
                ),
                DecodeScheduler::ContinuousPreempt => {}
            }
            rows.push(vec![
                format!("{n}"),
                scheduler.to_string(),
                format!("{:.0}", r.goodput_tok_s),
                format!("{:.1}", r.fleet.throughput_seq_s),
                format!("{:.0}", r.ttft_p50_s * 1e3),
                format!("{:.0}", r.ttft_p95_s * 1e3),
                format!("{:.1}", r.itl_p95_s * 1e3),
                tables::pct(r.slot_utilization),
                format!("{}", r.preemptions),
            ]);
        }
    }
    println!(
        "Scheduler × shard count (JSQ dispatch, offered load {DECODE_SATURATING_RATE:.0} seq/s)"
    );
    println!(
        "{}",
        tables::render(
            &[
                "shards",
                "scheduler",
                "goodput (tok/s)",
                "thr (seq/s)",
                "TTFT p50 (ms)",
                "TTFT p95 (ms)",
                "ITL p95 (ms)",
                "slot util",
                "preempts",
            ],
            &rows,
        )
    );

    // ── 2. Priority classes: continuous vs continuous+preempt ──────────
    let fleet = homogeneous_fleet(&base, 1);
    // One pool cell per offered rate; each cell runs its two schedulers
    // over the same trace (the trace build is part of the cell).
    let priority_grid = pool.par_map_indexed(&DECODE_RATES, |&rate| {
        let trace = decode_trace(
            &prefill,
            &output,
            DECODE_HIGH_FRACTION,
            rate,
            DECODE_REQUESTS,
            HARNESS_SEED,
        );
        let run = |scheduler| {
            simulate_decode(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                scheduler,
                &cfg,
            )
        };
        let cont = run(DecodeScheduler::Continuous);
        let pre = run(DecodeScheduler::ContinuousPreempt);
        (trace, cont, pre)
    });
    let mut rows = Vec::new();
    for (&rate, (trace, cont, pre)) in DECODE_RATES.iter().zip(&priority_grid) {
        let cont_high = high_ttft_p95(cont);
        let pre_high = high_ttft_p95(pre);
        if rate == DECODE_SATURATING_RATE {
            assert!(
                pre_high < cont_high,
                "@{rate} seq/s: preempting high-priority p95 TTFT {pre_high} !< \
                 continuous {cont_high}"
            );
        }
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{:.0}", cont_high * 1e3),
            format!("{:.0}", pre_high * 1e3),
            tables::speedup(cont_high / pre_high),
            format!("{:.0}", normal_ttft_p95(cont, trace) * 1e3),
            format!("{:.0}", normal_ttft_p95(pre, trace) * 1e3),
            format!("{}", pre.preemptions),
        ]);
    }
    println!(
        "Priority classes, 1 shard ({:.0} ms TTFT deadline)",
        DECODE_TTFT_DEADLINE_S * 1e3
    );
    println!(
        "{}",
        tables::render(
            &[
                "load (seq/s)",
                "high p95 TTFT cont (ms)",
                "high p95 TTFT preempt (ms)",
                "gain",
                "norm p95 cont (ms)",
                "norm p95 preempt (ms)",
                "preempts",
            ],
            &rows,
        )
    );
    println!(
        "(continuous>static goodput and preempt<continuous high-priority p95 TTFT\n\
         asserted above; static batching strands slots on straggler outputs, and\n\
         deadline-driven preemption trades normal-class tail for first-token SLOs)"
    );
}
