//! Table 1: model configurations and evaluation-dataset length statistics,
//! with the dataset half verified against sampled batches.

use lat_bench::tables;
use lat_model::config::ModelConfig;
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::DatasetSpec;

fn main() {
    println!("Table 1 — models & evaluation datasets\n");

    let model_rows: Vec<Vec<String>> = ModelConfig::paper_models()
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.layers.to_string(),
                m.hidden_dim.to_string(),
                m.num_heads.to_string(),
                format!("{:.1}M", m.parameter_count() as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &[
                "Model",
                "Layers",
                "Hidden dim",
                "Num. of Heads",
                "Encoder params"
            ],
            &model_rows,
        )
    );

    let mut rng = SplitMix64::new(1);
    let dataset_rows: Vec<Vec<String>> = DatasetSpec::paper_datasets()
        .iter()
        .map(|d| {
            // Verify the sampler reproduces the table statistics.
            let sample: Vec<usize> = (0..20_000).map(|_| d.sample_length(&mut rng)).collect();
            let mean = sample.iter().sum::<usize>() as f64 / sample.len() as f64;
            let max = *sample.iter().max().expect("non-empty");
            vec![
                d.name.clone(),
                d.avg_len.to_string(),
                d.max_len.to_string(),
                format!("{:.1}", d.max_over_avg()),
                format!("{mean:.0}"),
                max.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &[
                "Evaluation dataset",
                "Avg",
                "Max",
                "Max/Avg",
                "sampled avg",
                "sampled max"
            ],
            &dataset_rows,
        )
    );
    println!("(Max/Avg is the computational overhead padding introduces, §5)");
}
