//! Ablation: cross-platform *energy per batch* (the quantity behind
//! Table 2's GOP/J column) across the hardware-evaluation scenarios.

use lat_bench::scenarios::{geomean, Scenario, DEFAULT_BATCHES};
use lat_bench::tables;
use lat_core::pipeline::SchedulingPolicy;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::spec::FpgaSpec;
use lat_model::graph::AttentionMode;
use lat_platforms::Platform;

fn main() {
    println!("Ablation — energy per batch (batch 16, Joules)\n");
    let platforms = Platform::all_presets();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();

    for sc in Scenario::hardware_eval() {
        let design = AcceleratorDesign::new(
            &sc.model,
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            sc.dataset.avg_len,
        );
        let batches = sc.sample_batches(DEFAULT_BATCHES);
        let mut e = [0.0f64; 4]; // cpu, tx2, gpu, ours
        for batch in &batches {
            for (i, p) in platforms.iter().enumerate() {
                e[i] += p.batch_energy_j(&sc.model, batch);
            }
            e[3] += design
                .run_batch(batch, SchedulingPolicy::LengthAware)
                .energy_j;
        }
        for x in &mut e {
            *x /= batches.len() as f64;
        }
        ratios.push(e[2] / e[3]); // GPU vs ours
        rows.push(vec![
            sc.label(),
            format!("{:.1}", e[0]),
            format!("{:.2}", e[1]),
            format!("{:.2}", e[2]),
            format!("{:.3}", e[3]),
            format!("{:.0}x", e[0] / e[3]),
            format!("{:.1}x", e[2] / e[3]),
        ]);
    }
    println!(
        "{}",
        tables::render(
            &[
                "scenario",
                "CPU (J)",
                "TX2 (J)",
                "RTX 6000 (J)",
                "FPGA ours (J)",
                "vs CPU",
                "vs GPU",
            ],
            &rows,
        )
    );
    println!(
        "geomean energy advantage over RTX 6000: {:.1}x  (paper: >4x energy efficiency vs CUBLAS GPU)",
        geomean(&ratios)
    );
}
