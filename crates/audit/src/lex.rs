//! A minimal token stream over the stripped code view: identifiers, number
//! literals, (blanked) string literals, and single punctuation characters,
//! each tagged with its 1-based source line. Rules pattern-match on this
//! stream — no grammar, no AST.

/// Token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (possibly with suffix / fractional part).
    Num,
    /// String literal (contents already blanked by the stripper).
    Str,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// One token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes stripped code into tokens. Never fails: unexpected characters
/// become punctuation tokens.
pub fn lex(code: &str) -> Vec<Tok> {
    let cs: Vec<char> = code.chars().collect();
    let n = cs.len();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < n && cs[i] != '"' {
                if cs[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1; // past the closing quote (or EOF)
            toks.push(Tok {
                kind: TokKind::Str,
                line: start_line,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(cs[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            // digits (+ underscores), optional `.digits`, then any
            // alphanumeric suffix (exponents, `u32`, hex digits, …).
            while i < n && (cs[i].is_ascii_digit() || cs[i] == '_') {
                i += 1;
            }
            if i + 1 < n && cs[i] == '.' && cs[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (cs[i].is_ascii_digit() || cs[i] == '_') {
                    i += 1;
                }
            }
            while i < n && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                line,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        i += 1;
    }

    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tuple_field_access_keeps_method_ident() {
        // `a.0.partial_cmp` must not fuse `0.partial_cmp` into one number.
        let ks = kinds("a.0.partial_cmp(&b.0)");
        assert!(
            ks.contains(&TokKind::Ident("partial_cmp".to_string())),
            "{ks:?}"
        );
    }

    #[test]
    fn ranges_and_floats() {
        let ks = kinds("x[0..3] + 1.5e-2 + 0xff_u32");
        // `0..3` is Num, '.', '.', Num — the dots survive as punctuation.
        assert!(ks.iter().filter(|k| **k == TokKind::Punct('.')).count() >= 2);
        assert_eq!(ks.iter().filter(|k| **k == TokKind::Num).count(), 5);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
