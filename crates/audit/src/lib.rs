//! `lat-audit` — workspace determinism & numeric-safety static analysis.
//!
//! The workspace's headline guarantee is bit-for-bit `HARNESS_SEED`
//! determinism across every engine. The property suites enforce that
//! *dynamically*; this crate enforces the bug classes that break it
//! *statically*, at lint time: unordered hash iteration leaking into
//! results (D1), wall-clock reads inside simulated time (D2), ambient
//! randomness outside the seeded streams (D3), arrival-order channel
//! drains in parallel code (D4), NaN-unsafe float comparators (F1), and a
//! panic-surface ratchet (P1) pinned to a committed baseline.
//!
//! The engine is std-only — no `syn`, no registry access. Files are
//! stripped ([`strip`]), lexed ([`lex`]), and pattern-matched ([`rules`]).
//! Findings can be suppressed inline with
//! `// audit:allow(rule) -- <justification>`; an empty justification is
//! itself a finding. Output is deterministic: stably sorted text plus
//! canonical JSON via the vendored serde shim's [`serde::json`] writer.

#![warn(missing_docs)]

pub mod lex;
pub mod rules;
pub mod strip;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{FileClass, PanicCounts, RawFinding};
use serde::json::Value;

/// A finding after suppression processing, ready to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`"d1"`… or `"suppress"` for bad suppressions).
    pub rule: String,
    /// Workspace-relative path (forward slashes); for P1 the crate label.
    pub file: String,
    /// 1-based line; 0 for crate-level (P1) findings.
    pub line: usize,
    /// Deterministic description.
    pub message: String,
}

impl Finding {
    fn sort_key(&self) -> (&str, usize, &str, &str) {
        (&self.file, self.line, &self.rule, &self.message)
    }
}

/// An inline `audit:allow(...)` suppression parsed from a comment.
#[derive(Debug, Clone)]
struct Suppression {
    line: usize,
    rules: Vec<String>,
    /// Non-empty `-- reason` present.
    justified: bool,
}

/// Parses every `audit:allow(rule, ...) -- reason` occurrence in a file's
/// comments.
fn parse_suppressions(comments: &BTreeMap<usize, String>) -> Vec<Suppression> {
    const NEEDLE: &str = "audit:allow(";
    let mut out = Vec::new();
    for (&line, text) in comments {
        let mut rest = text.as_str();
        while let Some(pos) = rest.find(NEEDLE) {
            rest = &rest[pos + NEEDLE.len()..];
            let Some(close) = rest.find(')') else { break };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let after = rest[close + 1..].trim_start();
            let justified = after
                .strip_prefix("--")
                .is_some_and(|reason| !reason.trim().is_empty());
            out.push(Suppression {
                line,
                rules,
                justified,
            });
            rest = &rest[close + 1..];
        }
    }
    out
}

/// The audit of a single source file.
#[derive(Debug, Clone)]
pub struct FileAudit {
    /// Findings that survived suppression (including `suppress` findings
    /// for unjustified or unknown-rule allows).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified suppression.
    pub suppressed: usize,
    /// P1 counts (zero when the file is outside P1 scope).
    pub panic: PanicCounts,
}

/// Audits one file's contents under its path classification.
pub fn audit_source(rel_path: &str, class: &FileClass, src: &str) -> FileAudit {
    let stripped = strip::strip(src);
    let toks = lex::lex(&stripped.code);
    let raw = rules::check_tokens(class, &toks);
    let sups = parse_suppressions(&stripped.comments);

    let mut findings = Vec::new();
    let mut suppressed = 0usize;

    for s in &sups {
        if !s.justified {
            findings.push(Finding {
                rule: "suppress".to_string(),
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "audit:allow({}) without a justification — write \
                     `audit:allow(rule) -- <why this is safe>`",
                    s.rules.join(", ")
                ),
            });
        }
        for r in &s.rules {
            if !rules::known_rule(r) {
                findings.push(Finding {
                    rule: "suppress".to_string(),
                    file: rel_path.to_string(),
                    line: s.line,
                    message: format!("audit:allow names unknown rule `{r}`"),
                });
            }
        }
    }

    for f in raw {
        if is_suppressed(&f, &sups) {
            suppressed += 1;
        } else {
            findings.push(Finding {
                rule: f.rule.to_string(),
                file: rel_path.to_string(),
                line: f.line,
                message: f.message,
            });
        }
    }

    let panic = if class.p1_scope {
        rules::panic_surface(&toks)
    } else {
        PanicCounts::default()
    };

    FileAudit {
        findings,
        suppressed,
        panic,
    }
}

/// A justified suppression covers findings on its own line and the line
/// directly below it (so a standalone comment can shield the next line).
fn is_suppressed(f: &RawFinding, sups: &[Suppression]) -> bool {
    sups.iter().any(|s| {
        s.justified
            && s.rules.iter().any(|r| r == f.rule)
            && (s.line == f.line || s.line + 1 == f.line)
    })
}

/// The audit of the whole workspace tree.
#[derive(Debug, Clone)]
pub struct WorkspaceAudit {
    /// All surviving findings, stably sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// Per-crate panic-surface counts (P1).
    pub panic: BTreeMap<String, PanicCounts>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by justified suppressions.
    pub suppressed: usize,
}

/// Directory names the walker never descends into: build outputs, VCS and
/// editor metadata (any dot-dir), vendored API-subset shims that stand in
/// for external crates, and rule fixtures (which violate rules on purpose).
fn skip_dir(name: &str) -> bool {
    name.starts_with('.') || matches!(name, "target" | "vendor" | "fixtures")
}

/// Discovers every auditable `.rs` file under `root`, returned as sorted
/// workspace-relative paths (forward slashes) with their classification.
pub fn discover(root: &Path) -> io::Result<Vec<(String, FileClass)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !skip_dir(name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                if let Some(class) = rules::classify(&rel) {
                    files.push((rel, class));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Audits the workspace rooted at `root` (rules D1–F1 plus P1 counting;
/// baseline comparison is [`ratchet_findings`]).
pub fn audit_workspace(root: &Path) -> io::Result<WorkspaceAudit> {
    let files = discover(root)?;
    let mut findings = Vec::new();
    let mut panic: BTreeMap<String, PanicCounts> = BTreeMap::new();
    let mut suppressed = 0usize;
    let files_scanned = files.len();

    for (rel, class) in &files {
        let src = fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        let fa = audit_source(rel, class, &src);
        findings.extend(fa.findings);
        suppressed += fa.suppressed;
        if class.p1_scope {
            panic
                .entry(class.crate_name.clone())
                .or_default()
                .add(fa.panic);
        }
    }

    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Ok(WorkspaceAudit {
        findings,
        panic,
        files_scanned,
        suppressed,
    })
}

// ── P1 baseline ────────────────────────────────────────────────────────────

/// Renders the panic-surface baseline file (deterministic text).
pub fn baseline_text(panic: &BTreeMap<String, PanicCounts>) -> String {
    let mut out = String::from(
        "# lat-audit P1 panic-surface baseline: unwrap/expect/index counts per\n\
         # library crate (test modules excluded). The ratchet only goes down —\n\
         # regenerate with: cargo run -p lat-audit -- --write-baseline\n",
    );
    for (krate, c) in panic {
        let _ = writeln!(
            out,
            "{krate} unwrap={} expect={} index={}",
            c.unwrap, c.expect, c.index
        );
    }
    out
}

/// Parses a committed baseline file.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, PanicCounts>, String> {
    let mut map = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let krate = parts
            .next()
            .ok_or_else(|| format!("baseline line {}: missing crate", n + 1))?;
        let mut counts = PanicCounts::default();
        for p in parts {
            let (key, val) = p
                .split_once('=')
                .ok_or_else(|| format!("baseline line {}: malformed `{p}`", n + 1))?;
            let val: usize = val
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{val}`", n + 1))?;
            match key {
                "unwrap" => counts.unwrap = val,
                "expect" => counts.expect = val,
                "index" => counts.index = val,
                other => return Err(format!("baseline line {}: unknown key `{other}`", n + 1)),
            }
        }
        map.insert(krate.to_string(), counts);
    }
    Ok(map)
}

/// Compares current per-crate panic counts against the committed baseline:
/// any growth is a P1 violation, any shrink demands the baseline be
/// ratcheted down (so the committed file always matches the tree).
pub fn ratchet_findings(
    current: &BTreeMap<String, PanicCounts>,
    baseline: &BTreeMap<String, PanicCounts>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |krate: &str, message: String| {
        out.push(Finding {
            rule: "p1".to_string(),
            file: krate.to_string(),
            line: 0,
            message,
        });
    };
    for (krate, cur) in current {
        match baseline.get(krate) {
            None => push(
                krate,
                format!(
                    "crate missing from the panic-surface baseline \
                     (unwrap={} expect={} index={}) — run --write-baseline",
                    cur.unwrap, cur.expect, cur.index
                ),
            ),
            Some(base) => {
                for (kind, c, b) in [
                    ("unwrap", cur.unwrap, base.unwrap),
                    ("expect", cur.expect, base.expect),
                    ("index", cur.index, base.index),
                ] {
                    if c > b {
                        push(
                            krate,
                            format!(
                                "panic surface grew: {kind} {c} > baseline {b} — remove the \
                                 new {kind} or consciously ratchet with --write-baseline"
                            ),
                        );
                    } else if c < b {
                        push(
                            krate,
                            format!(
                                "panic surface shrank: {kind} {c} < baseline {b} — lock in \
                                 the win with --write-baseline"
                            ),
                        );
                    }
                }
            }
        }
    }
    for krate in baseline.keys() {
        if !current.contains_key(krate) {
            push(
                krate,
                "crate in the baseline no longer exists — run --write-baseline".to_string(),
            );
        }
    }
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

// ── rendering ──────────────────────────────────────────────────────────────

/// Renders findings as stable, sorted, line-oriented text.
pub fn render_text(audit: &WorkspaceAudit, extra: &[Finding]) -> String {
    let mut all: Vec<&Finding> = audit.findings.iter().chain(extra).collect();
    all.sort_by_key(|f| f.sort_key());
    let mut out = String::new();
    for f in &all {
        if f.line == 0 {
            let _ = writeln!(out, "{}: {}: {}", f.file, f.rule, f.message);
        } else {
            let _ = writeln!(out, "{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
        }
    }
    let _ = writeln!(
        out,
        "lat-audit: {} finding(s), {} suppressed, {} file(s) scanned",
        all.len(),
        audit.suppressed,
        audit.files_scanned
    );
    out
}

/// Renders the findings report as canonical JSON (sorted keys, sorted
/// findings, no timestamps — byte-identical across runs on equal trees).
pub fn render_json(audit: &WorkspaceAudit, extra: &[Finding]) -> String {
    let mut all: Vec<&Finding> = audit.findings.iter().chain(extra).collect();
    all.sort_by_key(|f| f.sort_key());
    let findings = Value::Arr(
        all.iter()
            .map(|f| {
                Value::obj([
                    ("rule".to_string(), Value::Str(f.rule.clone())),
                    ("file".to_string(), Value::Str(f.file.clone())),
                    ("line".to_string(), Value::UInt(f.line as u64)),
                    ("message".to_string(), Value::Str(f.message.clone())),
                ])
            })
            .collect(),
    );
    let panic = Value::Obj(
        audit
            .panic
            .iter()
            .map(|(k, c)| {
                (
                    k.clone(),
                    Value::obj([
                        ("unwrap".to_string(), Value::UInt(c.unwrap as u64)),
                        ("expect".to_string(), Value::UInt(c.expect as u64)),
                        ("index".to_string(), Value::UInt(c.index as u64)),
                    ]),
                )
            })
            .collect(),
    );
    Value::obj([
        ("schema".to_string(), Value::UInt(1)),
        ("tool".to_string(), Value::Str("lat-audit".to_string())),
        (
            "files_scanned".to_string(),
            Value::UInt(audit.files_scanned as u64),
        ),
        (
            "suppressed".to_string(),
            Value::UInt(audit.suppressed as u64),
        ),
        ("findings".to_string(), findings),
        ("panic_surface".to_string(), panic),
    ])
    .to_pretty_string(2)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the audit root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class() -> FileClass {
        FileClass {
            crate_name: "lat-hwsim".to_string(),
            sim_scope: true,
            bench_bin: false,
            p1_scope: true,
        }
    }

    #[test]
    fn justified_suppression_silences_same_and_next_line() {
        let same = "let m: HashMap<u32, u32> = x; // audit:allow(d1) -- test fixture map\n";
        let fa = audit_source("f.rs", &class(), same);
        assert!(fa.findings.is_empty(), "{:?}", fa.findings);
        assert_eq!(fa.suppressed, 1);

        let above = "// audit:allow(d1) -- aggregation is re-sorted before reporting\n\
                     let m: HashMap<u32, u32> = x;\n";
        let fa = audit_source("f.rs", &class(), above);
        assert!(fa.findings.is_empty());
        assert_eq!(fa.suppressed, 1);
    }

    #[test]
    fn empty_reason_is_a_finding_and_does_not_suppress() {
        let src = "let m: HashMap<u32, u32> = x; // audit:allow(d1)\n";
        let fa = audit_source("f.rs", &class(), src);
        let rules: Vec<&str> = fa.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"suppress"), "{rules:?}");
        assert!(rules.contains(&"d1"), "reasonless allow must not suppress");
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// audit:allow(nope) -- some reason\nlet x = 1;\n";
        let fa = audit_source("f.rs", &class(), src);
        assert_eq!(fa.findings.len(), 1);
        assert_eq!(fa.findings[0].rule, "suppress");
        assert!(fa.findings[0].message.contains("nope"));
    }

    #[test]
    fn baseline_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(
            "lat-core".to_string(),
            PanicCounts {
                unwrap: 3,
                expect: 1,
                index: 40,
            },
        );
        m.insert("lat-tensor".to_string(), PanicCounts::default());
        let text = baseline_text(&m);
        assert_eq!(parse_baseline(&text).unwrap(), m);
    }

    #[test]
    fn ratchet_fires_both_directions() {
        let cur: BTreeMap<String, PanicCounts> = [(
            "lat-core".to_string(),
            PanicCounts {
                unwrap: 2,
                expect: 0,
                index: 5,
            },
        )]
        .into();
        let base: BTreeMap<String, PanicCounts> = [(
            "lat-core".to_string(),
            PanicCounts {
                unwrap: 1,
                expect: 0,
                index: 6,
            },
        )]
        .into();
        let f = ratchet_findings(&cur, &base);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|f| f.message.contains("grew")));
        assert!(f.iter().any(|f| f.message.contains("shrank")));
        assert!(ratchet_findings(&base, &base).is_empty());
    }
}
