//! The rule catalog and the per-file checkers (see `crates/audit/README.md`
//! for the rationale behind each rule).
//!
//! Rules D1–F1 emit per-line findings from the token stream; P1 (the
//! panic-surface ratchet) is computed here as per-file counts and compared
//! against the committed baseline by the caller.

use crate::lex::{Tok, TokKind};

/// Catalog entry: stable rule id (the name used in `audit:allow(...)`) and
/// a one-line summary.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id, e.g. `"d1"`.
    pub id: &'static str,
    /// Human-readable rule name.
    pub title: &'static str,
}

/// Every suppressible rule, in catalog order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "d1",
        title: "no hash collections in deterministic sim/report crates",
    },
    RuleInfo {
        id: "d2",
        title: "no wall-clock reads outside crates/bench bins",
    },
    RuleInfo {
        id: "d3",
        title: "no ambient (unseeded) randomness",
    },
    RuleInfo {
        id: "d4",
        title: "thread-spawning files must not drain channels in arrival order",
    },
    RuleInfo {
        id: "f1",
        title: "float comparators must use total_cmp, not partial_cmp().unwrap()",
    },
    RuleInfo {
        id: "p1",
        title: "panic surface (unwrap/expect/indexing) ratchets down per crate",
    },
];

/// True if `id` names a rule in the catalog.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// How a file participates in the audit, derived from its workspace path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FileClass {
    /// Owning crate label (`lat-hwsim`, …; the umbrella root is `lat-fpga`).
    pub crate_name: String,
    /// D1 applies: simulation/report crates whose iteration order can leak
    /// into results.
    pub sim_scope: bool,
    /// D2 exempt: ablation/bench driver bins may read the wall clock.
    pub bench_bin: bool,
    /// P1 counts this file toward the crate's panic-surface baseline
    /// (library source only — not tests/, examples/, benches/, bench bins).
    pub p1_scope: bool,
}

/// Crates whose outputs are simulation results or reports — the D1 scope.
const SIM_CRATES: &[&str] = &["tensor", "model", "core", "hwsim", "workloads"];

/// Classifies a workspace-relative path (forward slashes). `None` means the
/// file is outside the audit (vendored shims, fixtures, build outputs are
/// already excluded by the walker).
pub fn classify(rel_path: &str) -> Option<FileClass> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or("");
        if dir.is_empty() {
            return None;
        }
        let bench_bin = rel_path.starts_with("crates/bench/src/bin/");
        return Some(FileClass {
            crate_name: format!("lat-{dir}"),
            sim_scope: SIM_CRATES.contains(&dir),
            bench_bin,
            p1_scope: rest.starts_with(&format!("{dir}/src/")) && !bench_bin,
        });
    }
    // Umbrella crate: root src/, integration tests, examples.
    if rel_path.starts_with("src/")
        || rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
    {
        return Some(FileClass {
            crate_name: "lat-fpga".to_string(),
            sim_scope: false,
            bench_bin: false,
            p1_scope: rel_path.starts_with("src/"),
        });
    }
    None
}

/// A rule hit before suppression processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Rule id (`"d1"`…).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// Deterministic description of the hit.
    pub message: String,
}

/// Runs the per-line rules (D1–F1) over one file's token stream.
pub fn check_tokens(class: &FileClass, toks: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    d1_hash_collections(class, toks, &mut out);
    d2_wall_clock(class, toks, &mut out);
    d3_ambient_rng(toks, &mut out);
    d4_unordered_drain(toks, &mut out);
    f1_float_cmp(toks, &mut out);
    out
}

// ── D1 ─────────────────────────────────────────────────────────────────────

fn d1_hash_collections(class: &FileClass, toks: &[Tok], out: &mut Vec<RawFinding>) {
    if !class.sim_scope {
        return;
    }
    for t in toks {
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            out.push(RawFinding {
                rule: "d1",
                line: t.line,
                message: format!(
                    "`{name}` in deterministic sim/report crate {}: unordered iteration \
                     can leak into results — use BTreeMap/BTreeSet or an indexed Vec",
                    class.crate_name
                ),
            });
        }
    }
}

// ── D2 ─────────────────────────────────────────────────────────────────────

fn d2_wall_clock(class: &FileClass, toks: &[Tok], out: &mut Vec<RawFinding>) {
    if class.bench_bin {
        return;
    }
    for t in toks {
        if let Some(name @ ("Instant" | "SystemTime")) = t.ident() {
            out.push(RawFinding {
                rule: "d2",
                line: t.line,
                message: format!(
                    "wall-clock `{name}` outside crates/bench bins: simulated time must \
                     come from the event clock, never the host"
                ),
            });
        }
    }
}

// ── D3 ─────────────────────────────────────────────────────────────────────

fn d3_ambient_rng(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (k, t) in toks.iter().enumerate() {
        let hit = match t.ident() {
            Some(name @ ("thread_rng" | "from_entropy" | "OsRng")) => Some(name),
            Some("rand") => {
                // `rand::random`
                if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(k + 3).and_then(Tok::ident) == Some("random")
                {
                    Some("rand::random")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(name) = hit {
            out.push(RawFinding {
                rule: "d3",
                line: t.line,
                message: format!(
                    "ambient randomness `{name}`: RNG must be threaded from a seeded \
                     stream (lat_tensor::rng) so HARNESS_SEED reproduces the run"
                ),
            });
        }
    }
}

// ── D4 ─────────────────────────────────────────────────────────────────────

/// Receiver-ish variable names the `for … in rx`-style drain check matches.
fn receiver_ident(name: &str) -> bool {
    name == "rx" || name == "receiver" || name.ends_with("_rx") || name.ends_with("_receiver")
}

fn d4_unordered_drain(toks: &[Tok], out: &mut Vec<RawFinding>) {
    // Heuristic scope: only files that spawn threads (`…spawn(`).
    let spawns = toks.iter().enumerate().any(|(k, t)| {
        t.ident() == Some("spawn") && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
    });
    if !spawns {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        // `.recv()` / `.try_recv()` / `.recv_timeout(..)` / `.try_iter()`
        // on anything, and `.iter()` / `.into_iter()` on a receiver-ish name.
        if let Some(m) = t.ident() {
            let channel_method = matches!(m, "recv" | "try_recv" | "recv_timeout" | "try_iter");
            let iter_method = matches!(m, "iter" | "into_iter")
                && k >= 2
                && toks[k - 2].ident().is_some_and(receiver_ident);
            let called = toks.get(k + 1).is_some_and(|t| t.is_punct('('));
            let on_dot = k >= 1 && toks[k - 1].is_punct('.');
            if on_dot && called && (channel_method || iter_method) {
                out.push(RawFinding {
                    rule: "d4",
                    line: t.line,
                    message: format!(
                        "unordered channel drain `.{m}(..)` in a thread-spawning file: \
                         collect results by index (results[i] = ..) so completion order \
                         cannot reorder output"
                    ),
                });
            }
        }
        // `for pat in rx {` / `for pat in &rx {` — iterating a receiver.
        if t.ident() == Some("in") {
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('&')) {
                j += 1;
            }
            if toks.get(j).and_then(Tok::ident).is_some_and(receiver_ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
            {
                out.push(RawFinding {
                    rule: "d4",
                    line: t.line,
                    message: "unordered channel drain `for .. in rx` in a thread-spawning \
                              file: collect results by index (results[i] = ..) so completion \
                              order cannot reorder output"
                        .to_string(),
                });
            }
        }
    }
}

// ── F1 ─────────────────────────────────────────────────────────────────────

fn f1_float_cmp(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (k, t) in toks.iter().enumerate() {
        if t.ident() != Some("partial_cmp") {
            continue;
        }
        let Some(open) = toks.get(k + 1) else {
            continue;
        };
        if !open.is_punct('(') {
            continue; // e.g. the `fn partial_cmp` definition in a PartialOrd impl
        }
        // Balance the argument list, then look for `.unwrap(` / `.expect(` /
        // `.unwrap_or(` — an Option collapsed at the comparison site.
        let mut depth = 0usize;
        let mut j = k + 1;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let collapse = toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && matches!(
                toks.get(j + 2).and_then(Tok::ident),
                Some("unwrap" | "expect" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default")
            );
        if collapse {
            let method = toks[j + 2].ident().unwrap_or("unwrap");
            out.push(RawFinding {
                rule: "f1",
                line: t.line,
                message: format!(
                    "float comparator `partial_cmp(..).{method}(..)`: NaN panics or \
                     silently mis-orders — use f64/f32::total_cmp (or justify with \
                     audit:allow(f1))"
                ),
            });
        }
    }
}

// ── P1: panic surface ──────────────────────────────────────────────────────

/// Per-file (aggregated per-crate) panic-surface counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` calls.
    pub unwrap: usize,
    /// `.expect(..)` calls.
    pub expect: usize,
    /// Index/slice expressions (`xs[i]`, `xs[a..b]`, `f()[0]`, `m[i][j]`).
    pub index: usize,
}

impl PanicCounts {
    /// Element-wise sum.
    pub fn add(&mut self, other: PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.index += other.index;
    }

    /// Total panic surface.
    pub fn total(&self) -> usize {
        self.unwrap + self.expect + self.index
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [f64]`, `match [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "in", "return", "break", "continue", "else", "match", "if", "while", "loop",
    "move", "dyn", "impl", "where", "as", "const", "static", "let", "unsafe", "use", "pub",
];

/// Counts the panic surface of one file's token stream, excluding
/// `#[cfg(test)]` / `#[test]` items (test code may unwrap freely without
/// moving the production ratchet).
pub fn panic_surface(toks: &[Tok]) -> PanicCounts {
    let masked = test_mask(toks);
    let mut c = PanicCounts::default();
    for (k, t) in toks.iter().enumerate() {
        if masked[k] {
            continue;
        }
        match &t.kind {
            TokKind::Ident(name) if name == "unwrap" || name == "expect" => {
                let called = toks.get(k + 1).is_some_and(|t| t.is_punct('('));
                let method = k >= 1 && toks[k - 1].is_punct('.');
                if called && method {
                    if name == "unwrap" {
                        c.unwrap += 1;
                    } else {
                        c.expect += 1;
                    }
                }
            }
            TokKind::Punct('[') if k >= 1 => {
                let prev = &toks[k - 1];
                let indexes = match &prev.kind {
                    TokKind::Ident(name) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    c.index += 1;
                }
            }
            _ => {}
        }
    }
    c
}

/// Marks tokens inside `#[cfg(test)]`- or `#[test]`-attributed items
/// (attribute through the item's closing brace). The attribute match is
/// exact — `#[cfg(not(test))]` does not mask.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut masked = vec![false; toks.len()];
    let mut k = 0usize;
    while k < toks.len() {
        if !(toks[k].is_punct('#') && toks.get(k + 1).is_some_and(|t| t.is_punct('['))) {
            k += 1;
            continue;
        }
        // Find the attribute's closing bracket.
        let mut depth = 0usize;
        let mut end = k + 1;
        while end < toks.len() {
            if toks[end].is_punct('[') {
                depth += 1;
            } else if toks[end].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        let inner = &toks[k + 2..end.min(toks.len())];
        let is_test_attr = matches!(
            inner,
            [t] if t.ident() == Some("test")
        ) || matches!(
            inner,
            [c, o, t, cl]
                if c.ident() == Some("cfg")
                    && o.is_punct('(')
                    && t.ident() == Some("test")
                    && cl.is_punct(')')
        );
        if !is_test_attr {
            k = end + 1;
            continue;
        }
        // Skip any further attributes, then mask through the item body.
        let mut j = end + 1;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // Scan to the item's opening brace (a `;` first means no body).
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if let Some(open) = open {
            let mut depth = 0usize;
            let mut close = open;
            while close < toks.len() {
                if toks[close].is_punct('{') {
                    depth += 1;
                } else if toks[close].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            for m in masked
                .iter_mut()
                .take(close.min(toks.len() - 1) + 1)
                .skip(k)
            {
                *m = true;
            }
            k = close + 1;
        } else {
            k = j + 1;
        }
    }
    masked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::strip::strip;

    fn toks(src: &str) -> Vec<Tok> {
        lex(&strip(src).code)
    }

    fn sim_class() -> FileClass {
        FileClass {
            crate_name: "lat-hwsim".to_string(),
            sim_scope: true,
            bench_bin: false,
            p1_scope: true,
        }
    }

    #[test]
    fn classify_paths() {
        let c = classify("crates/hwsim/src/fleet.rs").unwrap();
        assert!(c.sim_scope && c.p1_scope && !c.bench_bin);
        assert_eq!(c.crate_name, "lat-hwsim");

        let b = classify("crates/bench/src/bin/ablate_fleet.rs").unwrap();
        assert!(b.bench_bin && !b.sim_scope && !b.p1_scope);

        let root = classify("tests/fleet_props.rs").unwrap();
        assert_eq!(root.crate_name, "lat-fpga");
        assert!(!root.p1_scope);

        assert!(classify("crates/audit/src/lib.rs").unwrap().p1_scope);
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn d1_only_in_sim_scope() {
        let src = "use std::collections::HashMap;";
        let hits = check_tokens(&sim_class(), &toks(src));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "d1");

        let mut bench = sim_class();
        bench.sim_scope = false;
        assert!(check_tokens(&bench, &toks(src)).is_empty());
    }

    #[test]
    fn d1_ignores_strings_and_comments() {
        let src = "// HashMap here\nlet s = \"HashSet\";";
        assert!(check_tokens(&sim_class(), &toks(src)).is_empty());
    }

    #[test]
    fn f1_flags_collapse_not_definition() {
        let hits = check_tokens(
            &sim_class(),
            &toks("v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect(\"finite\"));"),
        );
        assert_eq!(hits.iter().filter(|h| h.rule == "f1").count(), 1);

        // A PartialOrd impl's own `fn partial_cmp` must not fire.
        let def =
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }";
        assert!(check_tokens(&sim_class(), &toks(def)).is_empty());

        // total_cmp is the fix — clean.
        assert!(check_tokens(&sim_class(), &toks("v.sort_by(f64::total_cmp);")).is_empty());
    }

    #[test]
    fn d4_needs_spawning_file() {
        let drain = "for msg in rx { out.push(msg); }";
        assert!(check_tokens(&sim_class(), &toks(drain)).is_empty());

        let spawning = format!("std::thread::spawn(|| {{}});\n{drain}");
        let hits = check_tokens(&sim_class(), &toks(&spawning));
        assert_eq!(hits.iter().filter(|h| h.rule == "d4").count(), 1);
    }

    #[test]
    fn panic_surface_counts_and_test_mask() {
        let src = r#"
            fn f(xs: &[f64]) -> f64 { xs[0] + xs.first().unwrap() + g().expect("x") }
            fn g(m: &Vec<Vec<f64>>) -> f64 { m[1][2] }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let v = vec![1]; v.last().unwrap(); assert_eq!(v[0], 1); }
            }
        "#;
        let c = panic_surface(&toks(src));
        assert_eq!(c.unwrap, 1, "{c:?}");
        assert_eq!(c.expect, 1);
        // xs[0], m[1], [2] — `&[f64]` and `vec![..]`/test-mod indexing not counted
        assert_eq!(c.index, 3);
    }
}
