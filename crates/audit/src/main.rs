//! `lat-audit` CLI: walk the workspace, run the rule catalog, compare the
//! panic surface against the committed baseline, and emit deterministic
//! text + canonical JSON findings.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use lat_audit::rules::PanicCounts;
use lat_audit::{
    audit_workspace, baseline_text, find_workspace_root, parse_baseline, ratchet_findings,
    render_json, render_text, Finding,
};

const USAGE: &str = "\
lat-audit — workspace determinism & numeric-safety static analysis

USAGE:
    lat-audit [OPTIONS]

OPTIONS:
    --root <DIR>             workspace root (default: nearest [workspace] above cwd)
    --baseline[=<FILE>]      check the P1 panic-surface ratchet against FILE
                             (default: <root>/crates/audit/panic_baseline.txt)
    --write-baseline[=<FILE>] regenerate the baseline from the current tree
    --json[=<FILE>]          also write canonical JSON findings
                             (default: <root>/audit_findings.json)
    --help                   print this help

Suppress a finding inline with `// audit:allow(rule) -- <justification>`;
a missing justification is itself a finding. Rule catalog:
crates/audit/README.md.";

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<Option<PathBuf>>,
    write_baseline: Option<Option<PathBuf>>,
    json: Option<Option<PathBuf>>,
}

fn parse_args(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        write_baseline: None,
        json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        match flag {
            "--help" | "-h" => return Ok(None),
            "--root" => {
                let v = inline
                    .or_else(|| it.next().cloned())
                    .ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => opts.baseline = Some(inline.map(PathBuf::from)),
            "--write-baseline" => opts.write_baseline = Some(inline.map(PathBuf::from)),
            "--json" => opts.json = Some(inline.map(PathBuf::from)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("lat-audit: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("lat-audit: no [workspace] Cargo.toml above the current directory");
            return ExitCode::from(2);
        }
    };

    let audit = match audit_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lat-audit: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let default_baseline = root.join("crates/audit/panic_baseline.txt");
    let mut extra: Vec<Finding> = Vec::new();

    if let Some(path) = &opts.write_baseline {
        let path = path.clone().unwrap_or_else(|| default_baseline.clone());
        if let Err(e) = std::fs::write(&path, baseline_text(&audit.panic)) {
            eprintln!("lat-audit: writing baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote panic-surface baseline to {}", path.display());
    } else if let Some(path) = &opts.baseline {
        let path = path.clone().unwrap_or_else(|| default_baseline.clone());
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "lat-audit: reading baseline {}: {e} (generate one with --write-baseline)",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        let baseline: BTreeMap<String, PanicCounts> = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lat-audit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        extra = ratchet_findings(&audit.panic, &baseline);
    }

    print!("{}", render_text(&audit, &extra));

    if let Some(path) = &opts.json {
        let path = path
            .clone()
            .unwrap_or_else(|| root.join("audit_findings.json"));
        if let Err(e) = std::fs::write(&path, render_json(&audit, &extra)) {
            eprintln!("lat-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if audit.findings.is_empty() && extra.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
