//! Comment/literal stripping: turns Rust source into a "code-only" view
//! (string/char literal contents and comments blanked, newlines preserved)
//! plus a per-line record of comment text for suppression parsing.
//!
//! This is a hand-rolled scanner, not a parser: the audit engine is std-only
//! (no `syn`, no registry access), so rules operate on a token stream lexed
//! from the stripped view. The scanner understands line comments, nested
//! block comments, string/byte-string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, `br#"…"#`), char/byte-char literals, and tells
//! lifetimes (`'a`) apart from char literals (`'a'`).

use std::collections::BTreeMap;

/// A source file with comments and literal contents blanked out.
#[derive(Debug, Clone)]
pub struct Stripped {
    /// Code-only text: comments and literal contents replaced by spaces
    /// (string literals keep their delimiting quotes so the lexer can emit
    /// a string token); every newline of the original survives, so line
    /// numbers in `code` match the source.
    pub code: String,
    /// Comment text per 1-based source line (block comments contribute to
    /// every line they span). Used to find `audit:allow(...)` suppressions.
    pub comments: BTreeMap<usize, String>,
}

/// Strips `src` into its code-only view. Never panics on malformed input —
/// unterminated literals/comments simply run to end of file.
pub fn strip(src: &str) -> Stripped {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut code = String::with_capacity(src.len());
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    let mut line = 1usize;
    // True when the previous code char continues an identifier — used to
    // tell `r"..."` (raw string) from an identifier ending in `r` followed
    // by a string, e.g. `var"` never happens but `stringify!(r)` might.
    let mut prev_ident = false;
    let mut i = 0usize;

    while i < n {
        let c = cs[i];
        let c1 = if i + 1 < n { cs[i + 1] } else { '\0' };

        // ── line comment ────────────────────────────────────────────────
        if c == '/' && c1 == '/' {
            // Doc comments (`///`, `//!`) are documentation, not directives:
            // they are blanked but never parsed for suppressions (`////…`
            // separators are plain comments).
            let c2 = if i + 2 < n { cs[i + 2] } else { '\0' };
            let c3 = if i + 3 < n { cs[i + 3] } else { '\0' };
            let doc = c2 == '!' || (c2 == '/' && c3 != '/');
            let mut text = String::new();
            while i < n && cs[i] != '\n' {
                text.push(cs[i]);
                code.push(' ');
                i += 1;
            }
            if !doc {
                comments.entry(line).or_default().push_str(&text);
            }
            prev_ident = false;
            continue;
        }

        // ── block comment (nested) ──────────────────────────────────────
        if c == '/' && c1 == '*' {
            // `/** … */` and `/*! … */` are doc comments — see above.
            let c2 = if i + 2 < n { cs[i + 2] } else { '\0' };
            let c3 = if i + 3 < n { cs[i + 3] } else { '\0' };
            let doc = c2 == '!' || (c2 == '*' && c3 != '/' && c3 != '*');
            let mut depth = 0usize;
            let mut text = String::new();
            while i < n {
                let c = cs[i];
                let c1 = if i + 1 < n { cs[i + 1] } else { '\0' };
                if c == '/' && c1 == '*' {
                    depth += 1;
                    text.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && c1 == '/' {
                    depth = depth.saturating_sub(1);
                    text.push_str("*/");
                    code.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else if c == '\n' {
                    if !doc {
                        comments.entry(line).or_default().push_str(&text);
                    }
                    text.clear();
                    code.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    text.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            if !doc && !text.is_empty() {
                comments.entry(line).or_default().push_str(&text);
            }
            prev_ident = false;
            continue;
        }

        // ── raw string: r"…", r#"…"#, br"…", br#"…"# ───────────────────
        if !prev_ident && (c == 'r' || (c == 'b' && c1 == 'r')) {
            let after_prefix = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while after_prefix + hashes < n && cs[after_prefix + hashes] == '#' {
                hashes += 1;
            }
            if after_prefix + hashes < n && cs[after_prefix + hashes] == '"' {
                code.push('"');
                i = after_prefix + hashes + 1;
                while i < n {
                    if cs[i] == '"' && (0..hashes).all(|k| cs.get(i + 1 + k) == Some(&'#')) {
                        i += 1 + hashes;
                        break;
                    }
                    if cs[i] == '\n' {
                        code.push('\n');
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
                code.push('"');
                prev_ident = false;
                continue;
            }
            // `r#ident` raw identifier or a plain ident starting with r/b:
            // fall through to the plain-char path.
        }

        // ── string / byte string ────────────────────────────────────────
        if c == '"' || (!prev_ident && c == 'b' && c1 == '"') {
            if c == 'b' {
                code.push(' ');
                i += 1;
            }
            code.push('"');
            i += 1;
            while i < n {
                let c = cs[i];
                if c == '\\' && i + 1 < n {
                    code.push_str("  ");
                    if cs[i + 1] == '\n' {
                        // escaped newline continuation keeps the line count
                        code.pop();
                        code.push('\n');
                        line += 1;
                    }
                    i += 2;
                } else if c == '"' {
                    i += 1;
                    break;
                } else if c == '\n' {
                    code.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            code.push('"');
            prev_ident = false;
            continue;
        }

        // ── char literal vs lifetime ────────────────────────────────────
        if c == '\'' || (!prev_ident && c == 'b' && c1 == '\'') {
            let q = if c == 'b' { i + 1 } else { i };
            let after = if q + 1 < n { cs[q + 1] } else { '\0' };
            let is_char_literal =
                after == '\\' || (after != '\0' && q + 2 < n && cs[q + 2] == '\'');
            if is_char_literal {
                if c == 'b' {
                    code.push(' ');
                }
                code.push(' '); // opening quote
                let mut j = q + 1;
                if after == '\\' {
                    code.push_str("  ");
                    j += 2;
                    while j < n && cs[j] != '\'' {
                        code.push(' ');
                        j += 1;
                    }
                } else {
                    code.push(' ');
                    j += 1;
                }
                if j < n {
                    code.push(' '); // closing quote
                    j += 1;
                }
                i = j;
            } else {
                // lifetime or loop label: blank just the quote, keep the
                // identifier (harmless to the rules).
                if c == 'b' {
                    code.push('b');
                    i += 1;
                }
                code.push(' ');
                i += 1;
            }
            prev_ident = false;
            continue;
        }

        // ── plain code char ─────────────────────────────────────────────
        if c == '\n' {
            line += 1;
            prev_ident = false;
        } else {
            prev_ident = c.is_alphanumeric() || c == '_';
        }
        code.push(c);
        i += 1;
    }

    Stripped { code, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_captured() {
        let s = strip("let x = 1; // uses HashMap\nlet y = 2;");
        assert!(!s.code.contains("HashMap"));
        assert!(s.code.contains("let y = 2;"));
        assert_eq!(
            s.comments.get(&1).map(String::as_str),
            Some("// uses HashMap")
        );
    }

    #[test]
    fn doc_comments_are_blanked_but_not_captured() {
        let s = strip("/// doc audit:allow(d1) -- nope\n//! inner doc\n// plain\nfn f() {}");
        assert!(!s.code.contains("audit"));
        assert_eq!(s.comments.get(&1), None);
        assert_eq!(s.comments.get(&2), None);
        assert_eq!(s.comments.get(&3).map(String::as_str), Some("// plain"));
    }

    #[test]
    fn nested_block_comments_preserve_lines() {
        let src = "a /* one /* two\nstill */ done */ b\nc";
        let s = strip(src);
        assert_eq!(s.code.matches('\n').count(), src.matches('\n').count());
        assert!(s.code.contains('a') && s.code.contains('b') && s.code.contains('c'));
        assert!(!s.code.contains("done"));
    }

    #[test]
    fn string_contents_are_blanked_quotes_kept() {
        let s = strip(r#"call("Instant::now inside string")"#);
        assert!(!s.code.contains("Instant"));
        assert!(s.code.contains("call(\""));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = strip(r###"let x = r#"thread_rng " quote"# ;"###);
        assert!(!s.code.contains("thread_rng"));
        assert!(s.code.ends_with(';'));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = strip("fn f<'a>(v: &'a str) { let c = 'Z'; let q = '\\''; }");
        // lifetimes keep their identifier, char contents are blanked
        assert!(s.code.contains("a>") && s.code.contains("a str"));
        assert!(!s.code.contains('Z'));
        assert!(!s.code.contains('\''));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = strip(r#"let a = "x\"HashSet\""; let b = 1;"#);
        assert!(!s.code.contains("HashSet"));
        assert!(s.code.contains("let b = 1;"));
    }

    #[test]
    fn byte_literals() {
        let s = strip(r#"let a = b"SystemTime"; let c = b'Z'; ok"#);
        assert!(!s.code.contains("SystemTime"));
        assert!(!s.code.contains('Z'));
        assert!(s.code.contains("ok"));
    }
}
