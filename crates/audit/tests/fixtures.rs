//! Per-rule fixture tests: every rule has a firing fixture (produces that
//! rule's findings and only that rule's) and a clean fixture (produces
//! none). Fixtures live under `crates/audit/fixtures/` — a directory the
//! workspace walker deliberately skips, since they violate rules on
//! purpose.

use lat_audit::audit_source;
use lat_audit::rules::{classify, panic_surface, FileClass, PanicCounts};
use lat_audit::{lex::lex, strip::strip};

/// Fixtures are audited as if they lived in a sim-scope library crate —
/// the strictest classification (D1 applies, D2 applies, P1 counts).
fn sim_class() -> FileClass {
    FileClass {
        crate_name: "lat-hwsim".to_string(),
        sim_scope: true,
        bench_bin: false,
        p1_scope: true,
    }
}

fn rules_of(src: &str) -> Vec<String> {
    let fa = audit_source("fixture.rs", &sim_class(), src);
    fa.findings.into_iter().map(|f| f.rule).collect()
}

fn assert_fires(src: &str, rule: &str) {
    let rules = rules_of(src);
    assert!(
        rules.iter().any(|r| r == rule),
        "expected at least one `{rule}` finding, got {rules:?}"
    );
    assert!(
        rules.iter().all(|r| r == rule),
        "expected only `{rule}` findings, got {rules:?}"
    );
}

fn assert_clean(src: &str) {
    let rules = rules_of(src);
    assert!(rules.is_empty(), "expected no findings, got {rules:?}");
}

#[test]
fn d1_hash_collections() {
    assert_fires(include_str!("../fixtures/d1_fires.rs"), "d1");
    assert_clean(include_str!("../fixtures/d1_clean.rs"));
}

#[test]
fn d2_wall_clock() {
    assert_fires(include_str!("../fixtures/d2_fires.rs"), "d2");
    assert_clean(include_str!("../fixtures/d2_clean.rs"));

    // The same firing source is allowed inside a crates/bench bin.
    let bench_bin = classify("crates/bench/src/bin/ablate_fleet.rs").unwrap();
    let fa = audit_source(
        "crates/bench/src/bin/ablate_fleet.rs",
        &bench_bin,
        include_str!("../fixtures/d2_fires.rs"),
    );
    assert!(fa.findings.is_empty(), "{:?}", fa.findings);
}

#[test]
fn d3_ambient_randomness() {
    assert_fires(include_str!("../fixtures/d3_fires.rs"), "d3");
    assert_clean(include_str!("../fixtures/d3_clean.rs"));
}

#[test]
fn d4_unordered_channel_drain() {
    assert_fires(include_str!("../fixtures/d4_fires.rs"), "d4");
    assert_clean(include_str!("../fixtures/d4_clean.rs"));

    // Both drain shapes are flagged: `for .. in rx` and `rx.recv()`.
    let fa = audit_source(
        "fixture.rs",
        &sim_class(),
        include_str!("../fixtures/d4_fires.rs"),
    );
    assert_eq!(fa.findings.len(), 2, "{:?}", fa.findings);
}

#[test]
fn f1_float_comparators() {
    assert_fires(include_str!("../fixtures/f1_fires.rs"), "f1");
    assert_clean(include_str!("../fixtures/f1_clean.rs"));

    // All three collapse shapes fire: expect, unwrap, unwrap_or.
    let fa = audit_source(
        "fixture.rs",
        &sim_class(),
        include_str!("../fixtures/f1_fires.rs"),
    );
    assert_eq!(fa.findings.len(), 3, "{:?}", fa.findings);
}

#[test]
fn p1_panic_surface_counts() {
    let toks = lex(&strip(include_str!("../fixtures/p1_fires.rs")).code);
    assert_eq!(
        panic_surface(&toks),
        PanicCounts {
            unwrap: 2,
            expect: 1,
            index: 3
        }
    );

    let toks = lex(&strip(include_str!("../fixtures/p1_clean.rs")).code);
    assert_eq!(panic_surface(&toks), PanicCounts::default());
}

#[test]
fn suppression_with_justification_silences() {
    let fa = audit_source(
        "fixture.rs",
        &sim_class(),
        include_str!("../fixtures/suppress_ok.rs"),
    );
    assert!(fa.findings.is_empty(), "{:?}", fa.findings);
    assert_eq!(fa.suppressed, 2);
}

#[test]
fn suppression_without_reason_is_a_finding() {
    let fa = audit_source(
        "fixture.rs",
        &sim_class(),
        include_str!("../fixtures/suppress_empty.rs"),
    );
    let rules: Vec<&str> = fa.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains(&"suppress"), "{rules:?}");
    assert!(
        rules.iter().filter(|r| **r == "d1").count() >= 2,
        "reasonless allow must not suppress the underlying finding: {rules:?}"
    );
    assert_eq!(fa.suppressed, 0);
}
