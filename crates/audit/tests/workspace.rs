//! Workspace-level audit pins: the real tree is clean under the committed
//! baseline, the committed baseline matches the tree exactly, and the
//! audit's output is byte-identical across runs.

use std::path::{Path, PathBuf};

use lat_audit::{
    audit_workspace, baseline_text, parse_baseline, ratchet_findings, render_json, render_text,
};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean() {
    let audit = audit_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        audit.findings.is_empty(),
        "workspace must audit clean; findings:\n{}",
        render_text(&audit, &[])
    );
    assert!(
        audit.files_scanned > 50,
        "walker saw {} files",
        audit.files_scanned
    );
}

#[test]
fn committed_baseline_matches_tree() {
    let root = workspace_root();
    let audit = audit_workspace(&root).expect("walk workspace");
    let committed = std::fs::read_to_string(root.join("crates/audit/panic_baseline.txt"))
        .expect("committed panic_baseline.txt");

    // Byte-exact: regenerating the baseline must be a no-op on a clean tree.
    assert_eq!(
        baseline_text(&audit.panic),
        committed,
        "panic_baseline.txt is stale — run: cargo run -p lat-audit -- --write-baseline"
    );

    // And the ratchet agrees: no growth, no unlocked shrink.
    let baseline = parse_baseline(&committed).expect("parse committed baseline");
    let findings = ratchet_findings(&audit.panic, &baseline);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn output_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = audit_workspace(&root).expect("walk workspace");
    let b = audit_workspace(&root).expect("walk workspace");

    assert_eq!(render_text(&a, &[]), render_text(&b, &[]));
    assert_eq!(render_json(&a, &[]), render_json(&b, &[]));
    assert_eq!(a.panic, b.panic);
    assert_eq!(a.files_scanned, b.files_scanned);
}

#[test]
fn json_report_shape() {
    let audit = audit_workspace(&workspace_root()).expect("walk workspace");
    let json = render_json(&audit, &[]);
    assert!(json.contains("\"schema\": 1"));
    assert!(json.contains("\"tool\": \"lat-audit\""));
    assert!(json.contains("\"panic_surface\""));
    // Canonical: keys arrive sorted, so "findings" precedes "panic_surface".
    assert!(json.find("\"findings\"").unwrap() < json.find("\"panic_surface\"").unwrap());
}
