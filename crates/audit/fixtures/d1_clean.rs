// D1 clean fixture: BTreeMap aggregation — report order is a property of
// the keys, not the hasher. Mentioning HashMap in a comment or a string
// ("HashMap") must not fire either.
use std::collections::BTreeMap;

pub fn per_shard_counts(shards: &[usize]) -> Vec<(usize, usize)> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for &s in shards {
        *counts.entry(s).or_insert(0) += 1;
    }
    let _label = "HashMap-free by construction";
    counts.into_iter().collect()
}
