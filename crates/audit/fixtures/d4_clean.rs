// D4 clean fixture: a thread-spawning file that collects results by index —
// each worker writes its own slot, so output order is a property of the
// plan, not of completion order (the ASM SweepPlan shape).
use std::thread;

pub fn fan_out(cells: Vec<u64>) -> Vec<u64> {
    let mut results = vec![0u64; cells.len()];
    thread::scope(|s| {
        for (slot, cell) in results.iter_mut().zip(&cells) {
            s.spawn(move || *slot = cell * 2);
        }
    });
    results
}
