// Suppression fixture: an audit:allow with no `-- reason` is itself a
// finding AND does not silence the underlying one.
use std::collections::HashMap; // audit:allow(d1)

pub fn build(pairs: Vec<(u32, u32)>) -> HashMap<u32, u32> {
    pairs.into_iter().collect()
}
