// F1 firing fixture: float comparators that collapse the partial order.
// A NaN either panics the sort (expect/unwrap) or silently mis-orders it
// (unwrap_or(Equal) breaks sort_by's total-order contract).
use std::cmp::Ordering;

pub fn sort_latencies(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}
