// D4 firing fixture: a thread-spawning file that drains a channel in
// arrival order. Completion order is scheduler-dependent, so `results`
// permutes across runs even with a fixed seed.
use std::sync::mpsc;
use std::thread;

pub fn fan_out(cells: Vec<u64>) -> Vec<u64> {
    let (tx, rx) = mpsc::channel();
    for cell in cells {
        let tx = tx.clone();
        thread::spawn(move || tx.send(cell * 2));
    }
    drop(tx);
    let mut results = Vec::new();
    for msg in rx {
        results.push(msg.clamp(0, u64::MAX));
    }
    while let Ok(late) = rx.recv() {
        results.push(late);
    }
    results
}
