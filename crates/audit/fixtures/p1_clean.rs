// P1 fixture with zero panic surface: fallible access stays an Option,
// iteration replaces indexing, and slice types / array literals / macro
// brackets (`&[f64]`, `[0.0; 4]`, `vec![..]`) are not index expressions.
pub fn total(xs: &[f64]) -> f64 {
    let _buf = [0.0f64; 4];
    let _v = vec![1.0, 2.0];
    xs.iter().copied().sum()
}

pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}
