// P1 fixture with a known panic surface: 2 unwraps, 1 expect, 3 index
// expressions in production code. The #[cfg(test)] module's unwraps and
// indexing must NOT count toward the ratchet.
pub fn pick(xs: &[f64], order: &[usize]) -> f64 {
    let first = xs.first().unwrap();
    let last = xs.last().unwrap();
    let mid = xs.get(order[0]).expect("in range");
    first + last + mid + xs[1] + xs[order.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_pick() {
        let xs = vec![1.0, 2.0, 3.0];
        let picked = pick(&xs, &[0, 1]);
        assert!(picked.partial_cmp(&0.0).unwrap().is_gt());
        assert_eq!(xs[0], 1.0);
    }
}
