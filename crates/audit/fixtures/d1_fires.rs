// D1 firing fixture: hash collections in a sim/report crate. Iterating a
// HashMap while building a report makes row order depend on hasher state.
use std::collections::{HashMap, HashSet};

pub fn per_shard_counts(shards: &[usize]) -> Vec<(usize, usize)> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for &s in shards {
        *counts.entry(s).or_insert(0) += 1;
        seen.insert(s);
    }
    counts.into_iter().collect() // unordered: report rows shuffle per run
}
