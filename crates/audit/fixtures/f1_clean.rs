// F1 clean fixture: total_cmp totalizes the float order (NaN sorts after
// +inf), and a PartialOrd *definition* must not fire — only collapsing
// call sites do. Keeping the Option (`if let`) is also fine.
use std::cmp::Ordering;

pub struct Event {
    pub time: f64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.time.partial_cmp(&other.time)
    }
}

pub fn sort_latencies(xs: &mut Vec<f64>) {
    xs.sort_by(f64::total_cmp);
}

pub fn maybe_less(a: f64, b: f64) -> bool {
    matches!(a.partial_cmp(&b), Some(Ordering::Less))
}
