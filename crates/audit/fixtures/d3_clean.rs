// D3 clean fixture: RNG threaded from a seeded stream — the harness seed
// fully determines the draw. `random` alone (not `rand::random`) is fine.
pub fn jitter(rng: &mut SplitMix64) -> f64 {
    let random = rng.next_f64();
    random
}
