// Suppression fixture: a justified audit:allow silences the finding on its
// own line and from the line above.
use std::collections::HashMap; // audit:allow(d1) -- fixture demonstrating justified suppression

// audit:allow(d1) -- key order re-sorted into a Vec before any report sees it
pub fn build(pairs: Vec<(u32, u32)>) -> HashMap<u32, u32> {
    pairs.into_iter().collect()
}
