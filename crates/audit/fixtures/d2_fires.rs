// D2 firing fixture: wall-clock reads outside crates/bench bins. Simulated
// time must come from the event clock; host time diverges per run.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
