// D2 clean fixture: durations derived from the simulated event clock only.
// The word Instant in comments or "SystemTime" in strings must not fire.
pub fn elapsed(now_s: f64, start_s: f64) -> f64 {
    let _note = "no SystemTime here";
    now_s - start_s
}
