// D3 firing fixture: ambient randomness. Each pattern draws entropy the
// harness seed cannot reproduce.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let a: f64 = rand::random();
    let _ = &mut rng;
    a
}
