//! # lat-platforms
//!
//! Analytical performance and energy models of the comparison platforms in
//! the paper's §5.2 cross-platform evaluation: Intel Xeon Gold 5218 (CPU),
//! NVIDIA Jetson TX2 (edge GPU) and Quadro RTX 6000 (GPU server).
//!
//! These platforms execute variable-length batches by **padding to the
//! batch maximum** (§1/§2: "inputs need to be zero-padded to the maximum
//! sentence length in the batch"), and they run **dense** `O(n²)`
//! attention. Each platform is a roofline-style model: category-specific
//! efficiency factors applied to the peak FLOP rate, with the attention
//! workflow markedly less efficient than the GEMM workflow (small batched
//! matmuls + memory-bound softmax), matching the Fig. 1(c) profile.
//!
//! The absolute efficiency constants are calibrated — and documented per
//! platform — so the *relative* cross-platform picture reproduces the
//! paper's Fig. 7; DESIGN.md records this substitution.
//!
//! # Example
//!
//! ```
//! use lat_platforms::{Platform, PlatformKind};
//! use lat_model::config::ModelConfig;
//!
//! let cpu = Platform::preset(PlatformKind::XeonGold5218);
//! let gpu = Platform::preset(PlatformKind::RtxQuadro6000);
//! let cfg = ModelConfig::bert_base();
//! let batch = [140, 100, 82, 78, 72];
//! assert!(gpu.batch_seconds(&cfg, &batch) < cpu.batch_seconds(&cfg, &batch));
//! ```

#![warn(missing_docs)]

use lat_model::config::ModelConfig;
use lat_model::graph::{AttentionMode, OperatorGraph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The evaluation platforms of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Intel Xeon Gold 5218 server CPU (PyTorch 1.10 / FP32).
    XeonGold5218,
    /// NVIDIA Jetson TX2 edge GPU (FP16).
    JetsonTx2,
    /// NVIDIA Quadro RTX 6000 server GPU (TensorRT-class, FP32/TF32 GEMMs).
    RtxQuadro6000,
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformKind::XeonGold5218 => write!(f, "CPU (Xeon Gold 5218)"),
            PlatformKind::JetsonTx2 => write!(f, "Jetson TX2"),
            PlatformKind::RtxQuadro6000 => write!(f, "RTX 6000"),
        }
    }
}

/// A roofline-style platform model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which physical platform this models.
    pub kind: PlatformKind,
    /// Peak arithmetic throughput in FLOP/s at the precision the platform
    /// runs transformers at.
    pub peak_flops: f64,
    /// Asymptotic (long-sequence) fraction of peak achieved on the large
    /// GEMM operators (QKV/out/FFN projections).
    pub gemm_efficiency: f64,
    /// Asymptotic fraction of peak achieved on the attention workflow
    /// (batched small matmuls, scale/mask/softmax) — much lower, being
    /// memory-bound.
    pub attention_efficiency: f64,
    /// Sequence length at which the platform reaches half its asymptotic
    /// efficiency. Software platforms lose most of their throughput on
    /// short sequences (small GEMM tiles, fixed per-kernel overhead):
    /// the effective efficiency is `eff · s/(s + half_length)`.
    pub efficiency_half_length: f64,
    /// Fixed per-batch framework/launch overhead in seconds.
    pub batch_overhead_s: f64,
    /// Board/package power under inference load, in watts.
    pub power_w: f64,
}

impl Platform {
    /// The calibrated preset for `kind`.
    ///
    /// Calibration notes (per DESIGN.md):
    /// - Xeon Gold 5218: 16 cores × AVX-512 ≈ 1.2 TFLOP/s FP32 peak;
    ///   PyTorch eager inference sustains ~25 % on GEMMs and ~1.5 % on the
    ///   attention workflow.
    /// - Jetson TX2: 1.33 TFLOP/s FP16 peak; small memory system holds
    ///   GEMMs to ~40 % and attention to ~4 %.
    /// - RTX 6000: 16.3 TFLOP/s FP32 peak; cuBLAS GEMMs reach ~55 %,
    ///   attention ~4.5 % (TensorRT profile in Fig. 1(c): ~60 % of encoder
    ///   time in self-attention at n=128).
    pub fn preset(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::XeonGold5218 => Self {
                kind,
                peak_flops: 1.2e12,
                gemm_efficiency: 0.28,
                attention_efficiency: 0.017,
                efficiency_half_length: 1000.0,
                batch_overhead_s: 5e-3,
                power_w: 125.0,
            },
            PlatformKind::JetsonTx2 => Self {
                kind,
                peak_flops: 1.33e12,
                gemm_efficiency: 0.19,
                attention_efficiency: 0.024,
                efficiency_half_length: 300.0,
                batch_overhead_s: 8e-3,
                power_w: 15.0,
            },
            PlatformKind::RtxQuadro6000 => Self {
                kind,
                peak_flops: 16.3e12,
                gemm_efficiency: 0.80,
                attention_efficiency: 0.030,
                efficiency_half_length: 900.0,
                batch_overhead_s: 1.5e-3,
                power_w: 260.0,
            },
        }
    }

    /// All three presets, CPU first.
    pub fn all_presets() -> Vec<Platform> {
        vec![
            Self::preset(PlatformKind::XeonGold5218),
            Self::preset(PlatformKind::JetsonTx2),
            Self::preset(PlatformKind::RtxQuadro6000),
        ]
    }

    /// End-to-end time for a batch of sequences of the given true lengths:
    /// the platform pads to the batch maximum and runs dense attention.
    pub fn batch_seconds(&self, cfg: &ModelConfig, lengths: &[usize]) -> f64 {
        if lengths.is_empty() {
            return 0.0;
        }
        let graph = OperatorGraph::encoder(cfg);
        let padded = lengths.iter().copied().max().unwrap_or(0);
        let scale = self.length_efficiency(padded);
        let attn = graph.attention_flops(padded, AttentionMode::Dense) as f64;
        let total = graph.total_flops_dense(padded) as f64;
        let other = total - attn;
        let per_seq_layer = attn / (self.peak_flops * self.attention_efficiency * scale)
            + other / (self.peak_flops * self.gemm_efficiency * scale);
        self.batch_overhead_s + per_seq_layer * cfg.layers as f64 * lengths.len() as f64
    }

    /// Length-dependent efficiency factor `s/(s + half_length)` in `(0,1)`.
    pub fn length_efficiency(&self, padded_len: usize) -> f64 {
        let s = padded_len.max(1) as f64;
        s / (s + self.efficiency_half_length)
    }

    /// Time spent in the self-attention workflow only (Fig. 7b numerator).
    pub fn attention_seconds(&self, cfg: &ModelConfig, lengths: &[usize]) -> f64 {
        if lengths.is_empty() {
            return 0.0;
        }
        let graph = OperatorGraph::encoder(cfg);
        let padded = lengths.iter().copied().max().unwrap_or(0);
        let scale = self.length_efficiency(padded);
        let attn = graph.attention_flops(padded, AttentionMode::Dense) as f64;
        attn / (self.peak_flops * self.attention_efficiency * scale)
            * cfg.layers as f64
            * lengths.len() as f64
    }

    /// Useful (unpadded, dense) throughput in GOPS on this batch.
    pub fn useful_gops(&self, cfg: &ModelConfig, lengths: &[usize]) -> f64 {
        let graph = OperatorGraph::encoder(cfg);
        let useful: u64 = lengths
            .iter()
            .map(|&l| graph.total_flops_dense(l))
            .sum::<u64>()
            * cfg.layers as u64;
        useful as f64 / 1e9 / self.batch_seconds(cfg, lengths).max(1e-12)
    }

    /// Energy for one batch in joules.
    pub fn batch_energy_j(&self, cfg: &ModelConfig, lengths: &[usize]) -> f64 {
        self.power_w * self.batch_seconds(cfg, lengths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Vec<usize> {
        vec![140, 100, 82, 78, 72]
    }

    #[test]
    fn platform_ordering_cpu_slowest() {
        let cfg = ModelConfig::bert_base();
        let cpu = Platform::preset(PlatformKind::XeonGold5218);
        let tx2 = Platform::preset(PlatformKind::JetsonTx2);
        let gpu = Platform::preset(PlatformKind::RtxQuadro6000);
        let b = batch();
        let t_cpu = cpu.batch_seconds(&cfg, &b);
        let t_tx2 = tx2.batch_seconds(&cfg, &b);
        let t_gpu = gpu.batch_seconds(&cfg, &b);
        assert!(t_cpu > t_tx2, "CPU {t_cpu} !> TX2 {t_tx2}");
        assert!(t_tx2 > t_gpu, "TX2 {t_tx2} !> GPU {t_gpu}");
    }

    #[test]
    fn padding_hurts_platforms() {
        // One long straggler inflates the whole batch.
        let cfg = ModelConfig::bert_base();
        let gpu = Platform::preset(PlatformKind::RtxQuadro6000);
        let uniform = vec![100; 8];
        let skewed = vec![800, 100, 100, 100, 100, 100, 100, 100];
        assert!(gpu.batch_seconds(&cfg, &skewed) > 3.0 * gpu.batch_seconds(&cfg, &uniform));
    }

    #[test]
    fn attention_share_majority_at_long_lengths() {
        // Fig. 1(c): ~60 % of encoder time in self-attention at n = 128 on
        // the GPU profile (the paper's Fig. 1(b) counts the Q/K/V and
        // output linear transforms inside the self-attention box; our
        // OpKind::is_attention excludes them, so the comparable share here
        // is lower); the share must grow with n.
        let cfg = ModelConfig::bert_base();
        let gpu = Platform::preset(PlatformKind::RtxQuadro6000);
        let b = vec![128; 4];
        let share =
            gpu.attention_seconds(&cfg, &b) / (gpu.batch_seconds(&cfg, &b) - gpu.batch_overhead_s);
        assert!(
            (0.30..0.75).contains(&share),
            "attention share {share:.2} at n=128"
        );
        let b512 = vec![512; 4];
        let share512 = gpu.attention_seconds(&cfg, &b512)
            / (gpu.batch_seconds(&cfg, &b512) - gpu.batch_overhead_s);
        assert!(share512 > share);
    }

    #[test]
    fn useful_gops_below_peak() {
        let cfg = ModelConfig::bert_base();
        for p in Platform::all_presets() {
            let g = p.useful_gops(&cfg, &batch());
            assert!(g > 0.0);
            assert!(g * 1e9 < p.peak_flops, "{} exceeds peak", p.kind);
        }
    }

    #[test]
    fn energy_scales_with_time() {
        let cfg = ModelConfig::bert_base();
        let p = Platform::preset(PlatformKind::XeonGold5218);
        let e1 = p.batch_energy_j(&cfg, &[100; 4]);
        let e2 = p.batch_energy_j(&cfg, &[100; 8]);
        assert!(e2 > e1);
    }

    #[test]
    fn empty_batch_is_zero() {
        let cfg = ModelConfig::bert_base();
        let p = Platform::preset(PlatformKind::JetsonTx2);
        assert_eq!(p.batch_seconds(&cfg, &[]), 0.0);
        assert_eq!(p.attention_seconds(&cfg, &[]), 0.0);
    }

    #[test]
    fn display_names() {
        assert!(PlatformKind::XeonGold5218.to_string().contains("Xeon"));
        assert!(PlatformKind::RtxQuadro6000.to_string().contains("RTX"));
    }

    #[test]
    fn larger_model_takes_longer() {
        let b = batch();
        let p = Platform::preset(PlatformKind::RtxQuadro6000);
        let base = p.batch_seconds(&ModelConfig::bert_base(), &b);
        let large = p.batch_seconds(&ModelConfig::bert_large(), &b);
        assert!(large > 2.0 * base);
    }
}
