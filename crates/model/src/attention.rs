//! The attention operator abstraction and the dense reference operator.
//!
//! The encoder ([`crate::encoder::Encoder`]) is generic over *how* scaled
//! dot-product attention is computed. The dense implementation here is the
//! `O(n²)` baseline of the paper; the sparse quantization-based operator
//! lives in `lat-core` and implements the same trait, which is what makes
//! the accuracy evaluation of Fig. 6 a one-line swap.

use crate::ModelError;
use lat_tensor::{ops, Matrix};

/// A scaled dot-product attention operator over one head.
///
/// Inputs are per-head matrices with one token per row: `q` is `n×dₕ`, `k`
/// and `v` are `m×dₕ` (self-attention uses `m = n`). The result is `n×dₕ`.
///
/// Implementations must be deterministic: the hardware evaluation relies on
/// replaying identical computations across platforms.
pub trait AttentionOp {
    /// Computes attention output for one head.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if operand shapes are inconsistent.
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<Matrix, ModelError>;

    /// Human-readable operator name (used in reports).
    fn name(&self) -> &'static str;
}

/// Full (dense) scaled dot-product attention:
/// `softmax(Q·Kᵀ/√dₕ)·V`, the Fig. 1(b) reference workflow.
///
/// # Example
///
/// ```
/// use lat_model::attention::{AttentionOp, DenseAttention};
/// use lat_tensor::Matrix;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let q = Matrix::identity(3);
/// let v = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
/// let out = DenseAttention.attend(&q, &q, &v)?;
/// assert_eq!(out.shape(), (3, 3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseAttention;

impl AttentionOp for DenseAttention {
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<Matrix, ModelError> {
        if k.rows() != v.rows() {
            return Err(ModelError::InvalidInput(format!(
                "K has {} rows but V has {}",
                k.rows(),
                v.rows()
            )));
        }
        let d = q.cols() as f32;
        let scores = q.matmul_transposed(k)?.scaled(1.0 / d.sqrt());
        let probs = ops::softmax_rows(&scores);
        Ok(probs.matmul(v)?)
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

/// Dense attention over a zero-padded buffer: rows/columns beyond
/// `valid_len` are masked out before softmax, mirroring how CPU/GPU
/// platforms execute variable-length batches after padding (§1, §2).
///
/// The *output* rows past `valid_len` are zeroed; they carry no information
/// but the platform still pays for computing them — exactly the waste the
/// paper's length-adaptive design removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddedDenseAttention {
    /// Number of real (non-padding) tokens.
    pub valid_len: usize,
}

impl AttentionOp for PaddedDenseAttention {
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<Matrix, ModelError> {
        if k.rows() != v.rows() {
            return Err(ModelError::InvalidInput(format!(
                "K has {} rows but V has {}",
                k.rows(),
                v.rows()
            )));
        }
        if self.valid_len > q.rows() {
            return Err(ModelError::InvalidInput(format!(
                "valid_len {} exceeds padded length {}",
                self.valid_len,
                q.rows()
            )));
        }
        let d = q.cols() as f32;
        let scores = q.matmul_transposed(k)?.scaled(1.0 / d.sqrt());
        let masked = ops::mask_padding(&scores, self.valid_len, f32::NEG_INFINITY);
        let probs = ops::softmax_rows(&masked);
        let mut out = probs.matmul(v)?;
        for i in self.valid_len..out.rows() {
            out.row_mut(i).fill(0.0);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "dense-padded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_tensor::rng::SplitMix64;

    #[test]
    fn output_shape_matches_query() {
        let mut rng = SplitMix64::new(11);
        let q = rng.gaussian_matrix(5, 8, 1.0);
        let k = rng.gaussian_matrix(7, 8, 1.0);
        let v = rng.gaussian_matrix(7, 8, 1.0);
        let out = DenseAttention.attend(&q, &k, &v).unwrap();
        assert_eq!(out.shape(), (5, 8));
    }

    #[test]
    fn mismatched_kv_rejected() {
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(3, 4);
        let v = Matrix::zeros(5, 4);
        assert!(DenseAttention.attend(&q, &k, &v).is_err());
    }

    #[test]
    fn uniform_scores_average_values() {
        // Zero queries ⇒ uniform softmax ⇒ output = mean of V rows.
        let q = Matrix::zeros(1, 4);
        let k = Matrix::from_fn(3, 4, |i, j| (i + j) as f32);
        let v = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 3.0], &[3.0, 3.0]]).unwrap();
        // v has 2 cols but k has 4 — allowed? shapes: probs is 1x3, v is 3x2.
        let out = DenseAttention.attend(&q, &k, &v).unwrap();
        assert!((out[(0, 0)] - 2.0).abs() < 1e-5);
        assert!((out[(0, 1)] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn sharp_scores_select_single_value() {
        // A query strongly aligned with key 1 attends almost only to it.
        let q = Matrix::from_rows(&[&[100.0, 0.0]]).unwrap();
        let k = Matrix::from_rows(&[&[-1.0, 0.0], &[1.0, 0.0]]).unwrap();
        let v = Matrix::from_rows(&[&[5.0], &[9.0]]).unwrap();
        let out = DenseAttention.attend(&q, &k, &v).unwrap();
        assert!((out[(0, 0)] - 9.0).abs() < 1e-3);
    }

    #[test]
    fn padded_matches_unpadded_on_valid_rows() {
        let mut rng = SplitMix64::new(12);
        let n = 6;
        let valid = 4;
        let q = rng.gaussian_matrix(n, 8, 1.0);
        let k = rng.gaussian_matrix(n, 8, 1.0);
        let v = rng.gaussian_matrix(n, 8, 1.0);

        let padded = PaddedDenseAttention { valid_len: valid }
            .attend(&q, &k, &v)
            .unwrap();
        let unpadded = DenseAttention
            .attend(
                &q.head_rows(valid),
                &k.head_rows(valid),
                &v.head_rows(valid),
            )
            .unwrap();
        for i in 0..valid {
            for j in 0..8 {
                assert!(
                    (padded[(i, j)] - unpadded[(i, j)]).abs() < 1e-5,
                    "mismatch at ({i},{j})"
                );
            }
        }
        // Padding rows are zeroed.
        for i in valid..n {
            assert!(padded.row(i).iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn padded_rejects_invalid_len() {
        let q = Matrix::zeros(2, 4);
        let op = PaddedDenseAttention { valid_len: 3 };
        assert!(op.attend(&q, &q, &q).is_err());
    }

    #[test]
    fn operator_names() {
        assert_eq!(DenseAttention.name(), "dense");
        assert_eq!(PaddedDenseAttention { valid_len: 1 }.name(), "dense-padded");
    }

    #[test]
    fn trait_is_object_safe() {
        let ops: Vec<Box<dyn AttentionOp>> = vec![
            Box::new(DenseAttention),
            Box::new(PaddedDenseAttention { valid_len: 2 }),
        ];
        let q = Matrix::identity(2);
        for op in &ops {
            assert!(op.attend(&q, &q, &q).is_ok());
        }
    }
}
