//! The encoder operator graph `G = (V, E)` with per-operator arithmetic
//! complexity `W(v, s)` (paper §4.2, Algorithm 1 inputs).
//!
//! Every performance-related component of the workspace — Algorithm 1 stage
//! allocation, the FPGA simulator's stage latencies, the CPU/GPU analytical
//! models, and the Fig. 1(c) breakdown — consumes this single description of
//! an encoder layer, so they can never disagree about what work exists.
//!
//! The graph is the Fig. 1(a)/(b) workflow:
//!
//! ```text
//! QkvLinear → AttnScores → Scale → Mask → Softmax → AttnApply → OutLinear
//!   → AddNorm1 → Ffn1 → Gelu → Ffn2 → AddNorm2
//! ```
//!
//! with every vertex's FLOP weight a function of sequence length `s` — the
//! key property (`O(n)` for all operators under sparse attention) that makes
//! the length-aware pipeline bubble-free.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operators of one encoder layer, in dataflow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Fused Q, K, V linear transformations (three `s×d · d×d` GEMMs).
    QkvLinear,
    /// Attention score computation `S = Q·Kᵀ` (dense) or quantized
    /// pre-selection + exact top-k scores (sparse).
    AttnScores,
    /// `1/√d` scaling of the score matrix.
    Scale,
    /// Padding/causal masking of the score matrix.
    Mask,
    /// Row-wise softmax (exponentiation + normalization).
    Softmax,
    /// Attention application `Z = S·V`.
    AttnApply,
    /// Output projection (`s×d · d×d` GEMM).
    OutLinear,
    /// First residual add + layer normalization.
    AddNorm1,
    /// FFN expansion GEMM (`s×d · d×f`).
    Ffn1,
    /// GELU activation over the `s×f` intermediate.
    Gelu,
    /// FFN contraction GEMM (`s×f · f×d`).
    Ffn2,
    /// Second residual add + layer normalization.
    AddNorm2,
}

impl OpKind {
    /// All operators in dataflow order.
    pub fn all() -> [OpKind; 12] {
        use OpKind::*;
        [
            QkvLinear, AttnScores, Scale, Mask, Softmax, AttnApply, OutLinear, AddNorm1, Ffn1,
            Gelu, Ffn2, AddNorm2,
        ]
    }

    /// Whether this operator belongs to the self-attention workflow
    /// (Fig. 1(b)) as opposed to the feed-forward/other group.
    pub fn is_attention(self) -> bool {
        use OpKind::*;
        matches!(self, AttnScores | Scale | Mask | Softmax | AttnApply)
    }

    /// Short label used in printed tables and traces.
    pub fn label(self) -> &'static str {
        use OpKind::*;
        match self {
            QkvLinear => "QKV-Linear",
            AttnScores => "MatMul QK^T",
            Scale => "Scale",
            Mask => "Masking",
            Softmax => "Softmax",
            AttnApply => "MatMul SV",
            OutLinear => "Out-Linear",
            AddNorm1 => "Add&Norm-1",
            Ffn1 => "FFN-1",
            Gelu => "GELU",
            Ffn2 => "FFN-2",
            AddNorm2 => "Add&Norm-2",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the attention-score path is computed; decides `W(v, s)` for the
/// attention operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionMode {
    /// Full `O(s²)` attention.
    Dense,
    /// The paper's sparse attention: low-bit pre-selection + exact top-k.
    Sparse {
        /// Number of retained candidates per query row.
        k: usize,
        /// Pre-selection bit-width (1 or 4 in the paper).
        preselect_bits: u32,
    },
}

impl AttentionMode {
    /// The paper's evaluation point: 1-bit pre-selection, k = 30.
    pub fn paper_sparse() -> Self {
        AttentionMode::Sparse {
            k: 30,
            preselect_bits: 1,
        }
    }

    /// Effective number of attended keys for a sequence of length `s`.
    pub fn attended(&self, s: usize) -> usize {
        match *self {
            AttentionMode::Dense => s,
            AttentionMode::Sparse { k, .. } => k.min(s),
        }
    }
}

/// One vertex of the operator graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operator {
    /// Index of this operator in the graph (also its topological position).
    pub id: usize,
    /// Which computation this vertex performs.
    pub kind: OpKind,
}

/// The encoder operator graph with architecture dimensions baked in.
///
/// # Example
///
/// ```
/// use lat_model::config::ModelConfig;
/// use lat_model::graph::{AttentionMode, OperatorGraph};
///
/// let g = OperatorGraph::encoder(&ModelConfig::bert_base());
/// let dense = g.total_flops(128, AttentionMode::Dense);
/// let sparse = g.total_flops(128, AttentionMode::paper_sparse());
/// assert!(sparse < dense);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorGraph {
    ops: Vec<Operator>,
    /// Directed dependency edges `(from, to)` by operator id.
    edges: Vec<(usize, usize)>,
    hidden_dim: usize,
    ffn_dim: usize,
    num_heads: usize,
}

impl OperatorGraph {
    /// Builds the canonical 12-operator encoder chain for `cfg`.
    pub fn encoder(cfg: &ModelConfig) -> Self {
        let ops: Vec<Operator> = OpKind::all()
            .into_iter()
            .enumerate()
            .map(|(id, kind)| Operator { id, kind })
            .collect();
        let edges = (0..ops.len() - 1).map(|i| (i, i + 1)).collect();
        Self {
            ops,
            edges,
            hidden_dim: cfg.hidden_dim,
            ffn_dim: cfg.ffn_dim,
            num_heads: cfg.num_heads,
        }
    }

    /// The operators in topological (dataflow) order.
    pub fn operators(&self) -> &[Operator] {
        &self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty (never true for [`OperatorGraph::encoder`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The dependency edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Ids of direct successors of `id`.
    pub fn successors(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(f, _)| f == id)
            .map(|&(_, t)| t)
            .collect()
    }

    /// Ids of direct predecessors of `id`.
    pub fn predecessors(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, t)| t == id)
            .map(|&(f, _)| f)
            .collect()
    }

    /// Hidden dimension `d` this graph was built for.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// FFN inner dimension.
    pub fn ffn_dim(&self) -> usize {
        self.ffn_dim
    }

    /// Arithmetic complexity `W(v, s)` of operator `v` at sequence length
    /// `s`, in FLOPs (MAC = 2 FLOPs). This is the vertex weight of
    /// Algorithm 1.
    ///
    /// For [`AttentionMode::Sparse`] the `AttnScores` weight contains both
    /// the low-bit pre-selection pass (scaled down by the bit-width ratio
    /// versus 8-bit datapath ops, as the LUT/bit-select hardware is that much
    /// cheaper per element) and the exact top-k score computation.
    pub fn flops(&self, kind: OpKind, s: usize, mode: AttentionMode) -> u64 {
        let s = s as u64;
        let d = self.hidden_dim as u64;
        let f = self.ffn_dim as u64;
        let a = mode.attended(s as usize) as u64; // attended keys per row
        use OpKind::*;
        match kind {
            QkvLinear => 3 * 2 * s * d * d,
            AttnScores => match mode {
                AttentionMode::Dense => 2 * s * s * d,
                AttentionMode::Sparse { preselect_bits, .. } => {
                    // Low-bit approximate pass over all s² pairs, discounted
                    // by bit ratio relative to the 8-bit datapath, plus exact
                    // recompute of the k winners per row, plus the top-k
                    // merge-sort (s · log²k comparisons, cheap).
                    let pre = 2 * s * s * d * preselect_bits as u64 / 8;
                    let exact = 2 * s * a * d;
                    let sort_k = (a.max(2) as f64).log2().ceil() as u64;
                    let sort = s * s * sort_k / 8;
                    pre + exact + sort
                }
            },
            Scale => s * a,
            Mask => s * a,
            Softmax => 5 * s * a,
            AttnApply => 2 * s * a * d,
            OutLinear => 2 * s * d * d,
            AddNorm1 | AddNorm2 => 10 * s * d,
            Ffn1 => 2 * s * d * f,
            Gelu => 8 * s * f,
            Ffn2 => 2 * s * f * d,
        }
    }

    /// Total FLOPs of one encoder layer at length `s` under `mode`.
    pub fn total_flops(&self, s: usize, mode: AttentionMode) -> u64 {
        self.ops.iter().map(|op| self.flops(op.kind, s, mode)).sum()
    }

    /// Total FLOPs with dense attention (convenience).
    pub fn total_flops_dense(&self, s: usize) -> u64 {
        self.total_flops(s, AttentionMode::Dense)
    }

    /// FLOPs of the self-attention workflow only (Fig. 1(b) operators).
    pub fn attention_flops(&self, s: usize, mode: AttentionMode) -> u64 {
        self.ops
            .iter()
            .filter(|op| op.kind.is_attention())
            .map(|op| self.flops(op.kind, s, mode))
            .sum()
    }

    /// Bytes of off-chip traffic operator `v` needs at length `s`, assuming
    /// `bytes_per_elem`-wide activations and *no* on-chip reuse (worst case;
    /// the FPGA simulator applies its buffer model on top of this).
    pub fn memory_bytes(
        &self,
        kind: OpKind,
        s: usize,
        mode: AttentionMode,
        bytes_per_elem: u64,
    ) -> u64 {
        let s = s as u64;
        let d = self.hidden_dim as u64;
        let f = self.ffn_dim as u64;
        let a = mode.attended(s as usize) as u64;
        use OpKind::*;
        let elems = match kind {
            QkvLinear => s * d + 3 * d * d + 3 * s * d,
            AttnScores => match mode {
                AttentionMode::Dense => 2 * s * d + s * s,
                // Quantized operands are packed sub-byte. The exact pass
                // re-reads Q and K once (candidates are gathered through
                // on-chip buffers), and the top-k index/value pairs are
                // spilled to and re-loaded from HBM for inter-stage buffering
                // (§4.1); the sparse score matrix is only s×k.
                AttentionMode::Sparse { preselect_bits, .. } => {
                    2 * s * d * preselect_bits as u64 / 8 + 2 * s * d + 5 * s * a
                }
            },
            Scale | Mask => s * a, // in-place streaming
            Softmax => 2 * s * a,
            AttnApply => s * a + a * d + s * d,
            OutLinear => s * d + d * d + s * d,
            AddNorm1 | AddNorm2 => 3 * s * d,
            Ffn1 => s * d + d * f + s * f,
            Gelu => 2 * s * f,
            Ffn2 => s * f + f * d + s * d,
        };
        elems * bytes_per_elem
    }

    /// Per-operator FLOP breakdown at length `s`, as `(kind, flops, share)`
    /// tuples — the data behind Fig. 1(c).
    pub fn breakdown(&self, s: usize, mode: AttentionMode) -> Vec<(OpKind, u64, f64)> {
        let total = self.total_flops(s, mode).max(1) as f64;
        self.ops
            .iter()
            .map(|op| {
                let fl = self.flops(op.kind, s, mode);
                (op.kind, fl, fl as f64 / total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_graph() -> OperatorGraph {
        OperatorGraph::encoder(&ModelConfig::bert_base())
    }

    #[test]
    fn encoder_graph_is_a_chain_of_12() {
        let g = base_graph();
        assert_eq!(g.len(), 12);
        assert_eq!(g.edges().len(), 11);
        assert_eq!(g.successors(0), vec![1]);
        assert_eq!(g.predecessors(11), vec![10]);
        assert!(g.successors(11).is_empty());
        assert!(g.predecessors(0).is_empty());
    }

    #[test]
    fn qkv_flops_formula() {
        let g = base_graph();
        // 3 GEMMs of s×768 · 768×768, 2 FLOPs per MAC, s = 100.
        let expect = 3 * 2 * 100u64 * 768 * 768;
        assert_eq!(
            g.flops(OpKind::QkvLinear, 100, AttentionMode::Dense),
            expect
        );
    }

    #[test]
    fn dense_attention_is_quadratic() {
        let g = base_graph();
        let f1 = g.flops(OpKind::AttnScores, 100, AttentionMode::Dense);
        let f2 = g.flops(OpKind::AttnScores, 200, AttentionMode::Dense);
        assert_eq!(f2, 4 * f1);
    }

    #[test]
    fn sparse_attention_attended_clamps_to_seq_len() {
        let m = AttentionMode::Sparse {
            k: 30,
            preselect_bits: 1,
        };
        assert_eq!(m.attended(20), 20);
        assert_eq!(m.attended(100), 30);
    }

    #[test]
    fn sparse_cuts_attention_flops_by_over_80_percent_at_k30() {
        // The §5.1 claim: >80% attention-complexity reduction at Top-30.
        let g = base_graph();
        let s = 177; // SQuAD average length
        let dense = g.attention_flops(s, AttentionMode::Dense);
        let sparse = g.attention_flops(s, AttentionMode::paper_sparse());
        let reduction = 1.0 - sparse as f64 / dense as f64;
        assert!(reduction > 0.60, "reduction only {reduction:.3}");
        // At longer lengths the reduction exceeds 80%.
        let dense = g.attention_flops(500, AttentionMode::Dense);
        let sparse = g.attention_flops(500, AttentionMode::paper_sparse());
        let reduction = 1.0 - sparse as f64 / dense as f64;
        assert!(reduction > 0.80, "reduction only {reduction:.3}");
    }

    #[test]
    fn sparse_mode_linear_in_length_for_apply() {
        let g = base_graph();
        let m = AttentionMode::paper_sparse();
        let f1 = g.flops(OpKind::AttnApply, 100, m);
        let f2 = g.flops(OpKind::AttnApply, 200, m);
        assert_eq!(f2, 2 * f1); // O(n) as the paper requires for scheduling
    }

    #[test]
    fn total_is_sum_of_parts() {
        let g = base_graph();
        let total = g.total_flops(64, AttentionMode::Dense);
        let sum: u64 = OpKind::all()
            .into_iter()
            .map(|k| g.flops(k, 64, AttentionMode::Dense))
            .sum();
        assert_eq!(total, sum);
    }

    #[test]
    fn attention_share_grows_with_length() {
        // Fig. 1 caption: attention share climbs as tokens increase.
        let g = base_graph();
        let share = |s: usize| {
            g.attention_flops(s, AttentionMode::Dense) as f64
                / g.total_flops(s, AttentionMode::Dense) as f64
        };
        assert!(share(512) > share(128));
        assert!(share(128) > share(32));
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let g = base_graph();
        let b = g.breakdown(128, AttentionMode::Dense);
        let total: f64 = b.iter().map(|(_, _, sh)| sh).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn memory_bytes_positive_and_scaled() {
        let g = base_graph();
        for kind in OpKind::all() {
            let m1 = g.memory_bytes(kind, 128, AttentionMode::Dense, 1);
            let m4 = g.memory_bytes(kind, 128, AttentionMode::Dense, 4);
            assert!(m1 > 0, "{kind} has zero traffic");
            assert_eq!(m4, 4 * m1);
        }
    }

    #[test]
    fn sparse_reduces_score_memory_traffic() {
        // §3.1: sparse attention alleviates off-chip memory traffic.
        let g = base_graph();
        let dense = g.memory_bytes(OpKind::AttnScores, 512, AttentionMode::Dense, 1);
        let sparse = g.memory_bytes(OpKind::AttnScores, 512, AttentionMode::paper_sparse(), 1);
        assert!(sparse < dense);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = OpKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }
}
