//! # lat-model
//!
//! Transformer encoder substrate for the lat-fpga reproduction of the DAC'22
//! length-adaptive co-design paper.
//!
//! The paper evaluates four self-attention-centric NLP models — DistilBERT,
//! BERT-base, RoBERTa and BERT-large (Table 1). This crate implements the
//! shared encoder architecture those models use, with the attention operator
//! left *pluggable* (the [`attention::AttentionOp`] trait) so the paper's
//! sparse attention (in `lat-core`) can be swapped against the dense
//! baseline without touching the rest of the network.
//!
//! Contents:
//!
//! - [`config::ModelConfig`]: architecture hyper-parameters + the paper's
//!   four presets.
//! - [`attention`]: the attention operator abstraction and the dense
//!   reference implementation.
//! - [`weights`] / [`encoder`]: deterministic randomly-initialized encoder
//!   weights and the full forward pass (multi-head attention → add&norm →
//!   FFN → add&norm), exactly the Fig. 1(a) workflow.
//! - [`embedding`]: deterministic token/positional embeddings.
//! - [`graph`]: the encoder *operator graph* with per-operator arithmetic
//!   complexity `W(v, s)` as a function of sequence length — the input to
//!   the paper's Algorithm 1 stage-allocation and to every performance
//!   model in the workspace.
//!
//! # Example
//!
//! ```
//! use lat_model::config::ModelConfig;
//! use lat_model::encoder::Encoder;
//! use lat_model::attention::DenseAttention;
//! use lat_tensor::rng::SplitMix64;
//!
//! # fn main() -> Result<(), lat_model::ModelError> {
//! let cfg = ModelConfig::tiny(); // 2 layers, 64 hidden, 4 heads — test size
//! let mut rng = SplitMix64::new(1);
//! let enc = Encoder::random(&cfg, &mut rng);
//! let x = rng.gaussian_matrix(10, cfg.hidden_dim, 0.5); // 10 tokens
//! let y = enc.forward(&x, &DenseAttention)?;
//! assert_eq!(y.shape(), (10, cfg.hidden_dim));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod attention;
pub mod config;
pub mod embedding;
pub mod encoder;
pub mod graph;
pub mod head;
pub mod quantized;
pub mod weights;

mod error;

pub use error::ModelError;
