//! The encoder forward pass (Fig. 1(a)): multi-head self-attention with a
//! pluggable attention operator, residual + LayerNorm, feed-forward with
//! GELU, residual + LayerNorm.

use crate::attention::AttentionOp;
use crate::config::ModelConfig;
use crate::weights::LayerWeights;
use crate::ModelError;
use lat_tensor::rng::SplitMix64;
use lat_tensor::{ops, Matrix};

/// LayerNorm epsilon used throughout (BERT uses 1e-12; at f32 the forward
/// pass is insensitive to anything below ~1e-5).
pub const LAYER_NORM_EPS: f32 = 1e-5;

/// One encoder layer: weights plus the forward computation.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderLayer {
    cfg: ModelConfig,
    weights: LayerWeights,
}

impl EncoderLayer {
    /// Builds a layer from explicit weights.
    pub fn new(cfg: ModelConfig, weights: LayerWeights) -> Self {
        Self { cfg, weights }
    }

    /// Samples a randomly-initialized layer.
    pub fn random(cfg: &ModelConfig, rng: &mut SplitMix64) -> Self {
        Self {
            cfg: cfg.clone(),
            weights: LayerWeights::random(cfg, rng),
        }
    }

    /// The layer's weights.
    pub fn weights(&self) -> &LayerWeights {
        &self.weights
    }

    /// Projects the input into per-layer Q, K, V matrices (Stage 1 of the
    /// accelerator). Exposed separately because the sparse-attention
    /// pipeline needs Q/K before attention runs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `x` has the wrong hidden dimension.
    pub fn project_qkv(&self, x: &Matrix) -> Result<(Matrix, Matrix, Matrix), ModelError> {
        self.check_input(x)?;
        let q = x
            .matmul(&self.weights.w_q)?
            .add_row_bias(&self.weights.b_q)?;
        let k = x
            .matmul(&self.weights.w_k)?
            .add_row_bias(&self.weights.b_k)?;
        let v = x
            .matmul(&self.weights.w_v)?
            .add_row_bias(&self.weights.b_v)?;
        Ok((q, k, v))
    }

    /// Multi-head attention block: split heads, run `op` per head, concat,
    /// output projection.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch or operator failure.
    pub fn multi_head_attention(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        op: &dyn AttentionOp,
    ) -> Result<Matrix, ModelError> {
        let concat = self.multi_head_attention_concat(q, k, v, op)?;
        Ok(concat
            .matmul(&self.weights.w_o)?
            .add_row_bias(&self.weights.b_o)?)
    }

    /// The per-head attention + concatenation *without* the output
    /// projection — exposed so alternative datapaths (e.g. the 8-bit
    /// quantized path in [`crate::quantized`]) can apply their own
    /// projection arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch or operator failure.
    pub fn multi_head_attention_concat(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        op: &dyn AttentionOp,
    ) -> Result<Matrix, ModelError> {
        let h = self.cfg.num_heads;
        let dh = self.cfg.head_dim();
        let mut concat: Option<Matrix> = None;
        for head in 0..h {
            let lo = head * dh;
            let hi = lo + dh;
            let qh = q.col_slice(lo, hi);
            let kh = k.col_slice(lo, hi);
            let vh = v.col_slice(lo, hi);
            let zh = op.attend(&qh, &kh, &vh)?;
            concat = Some(match concat {
                None => zh,
                Some(acc) => acc.hstack(&zh)?,
            });
        }
        concat
            .ok_or_else(|| ModelError::InvalidConfig("encoder must have at least one head".into()))
    }

    /// Feed-forward block: `GELU(x·W1 + b1)·W2 + b2` (Stage 3, FdFwd).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch.
    pub fn feed_forward(&self, x: &Matrix) -> Result<Matrix, ModelError> {
        let inner = x
            .matmul(&self.weights.w_ffn1)?
            .add_row_bias(&self.weights.b_ffn1)?;
        let activated = ops::gelu_matrix(&inner);
        Ok(activated
            .matmul(&self.weights.w_ffn2)?
            .add_row_bias(&self.weights.b_ffn2)?)
    }

    /// Full layer forward pass with attention operator `op`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `x` has the wrong hidden dimension or any
    /// internal operation fails.
    pub fn forward(&self, x: &Matrix, op: &dyn AttentionOp) -> Result<Matrix, ModelError> {
        self.check_input(x)?;
        let (q, k, v) = self.project_qkv(x)?;
        let attn = self.multi_head_attention(&q, &k, &v, op)?;
        let res1 = x.add(&attn)?;
        let norm1 = ops::layer_norm(
            &res1,
            &self.weights.ln1_gamma,
            &self.weights.ln1_beta,
            LAYER_NORM_EPS,
        );
        let ffn = self.feed_forward(&norm1)?;
        let res2 = norm1.add(&ffn)?;
        Ok(ops::layer_norm(
            &res2,
            &self.weights.ln2_gamma,
            &self.weights.ln2_beta,
            LAYER_NORM_EPS,
        ))
    }

    fn check_input(&self, x: &Matrix) -> Result<(), ModelError> {
        if x.cols() != self.cfg.hidden_dim {
            return Err(ModelError::InvalidInput(format!(
                "input has {} columns, model expects hidden_dim {}",
                x.cols(),
                self.cfg.hidden_dim
            )));
        }
        Ok(())
    }
}

/// A stack of encoder layers (the full model minus embeddings/heads).
///
/// # Example
///
/// ```
/// use lat_model::{config::ModelConfig, encoder::Encoder, attention::DenseAttention};
/// use lat_tensor::rng::SplitMix64;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let cfg = ModelConfig::tiny();
/// let mut rng = SplitMix64::new(7);
/// let enc = Encoder::random(&cfg, &mut rng);
/// let x = rng.gaussian_matrix(5, cfg.hidden_dim, 1.0);
/// let y = enc.forward(&x, &DenseAttention)?;
/// assert_eq!(y.shape(), x.shape());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    cfg: ModelConfig,
    layers: Vec<EncoderLayer>,
}

impl Encoder {
    /// Samples a randomly-initialized encoder stack for `cfg`.
    pub fn random(cfg: &ModelConfig, rng: &mut SplitMix64) -> Self {
        let layers = (0..cfg.layers)
            .map(|_| EncoderLayer::random(cfg, rng))
            .collect();
        Self {
            cfg: cfg.clone(),
            layers,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The individual layers, in execution order.
    pub fn layers(&self) -> &[EncoderLayer] {
        &self.layers
    }

    /// Runs all layers in sequence with attention operator `op`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the input shape is wrong or any layer
    /// fails.
    pub fn forward(&self, x: &Matrix, op: &dyn AttentionOp) -> Result<Matrix, ModelError> {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h, op)?;
        }
        Ok(h)
    }

    /// Mean-pooled sentence representation after the full forward pass —
    /// the pooling the synthetic classification task consumes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] as for [`Encoder::forward`].
    pub fn encode_pooled(&self, x: &Matrix, op: &dyn AttentionOp) -> Result<Vec<f32>, ModelError> {
        let h = self.forward(x, op)?;
        let n = h.rows().max(1) as f32;
        let mut pooled = vec![0.0f32; h.cols()];
        for i in 0..h.rows() {
            for (acc, &val) in pooled.iter_mut().zip(h.row(i)) {
                *acc += val / n;
            }
        }
        Ok(pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::DenseAttention;

    fn tiny_encoder(seed: u64) -> (ModelConfig, Encoder, SplitMix64) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed);
        let enc = Encoder::random(&cfg, &mut rng);
        (cfg, enc, rng)
    }

    #[test]
    fn forward_preserves_shape() {
        let (cfg, enc, mut rng) = tiny_encoder(21);
        let x = rng.gaussian_matrix(9, cfg.hidden_dim, 1.0);
        let y = enc.forward(&x, &DenseAttention).unwrap();
        assert_eq!(y.shape(), (9, cfg.hidden_dim));
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let (_, enc, mut rng) = tiny_encoder(22);
        let x = rng.gaussian_matrix(4, 10, 1.0);
        assert!(matches!(
            enc.forward(&x, &DenseAttention),
            Err(ModelError::InvalidInput(_))
        ));
    }

    #[test]
    fn output_is_layer_normalized() {
        let (cfg, enc, mut rng) = tiny_encoder(23);
        let x = rng.gaussian_matrix(6, cfg.hidden_dim, 1.0);
        let y = enc.forward(&x, &DenseAttention).unwrap();
        // Each row should have ~zero mean, ~unit variance (gamma=1, beta=0).
        for i in 0..y.rows() {
            let row = y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-3, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 0.05, "row {i} var {var}");
        }
    }

    #[test]
    fn deterministic_forward() {
        let (cfg, enc, mut rng) = tiny_encoder(24);
        let x = rng.gaussian_matrix(5, cfg.hidden_dim, 1.0);
        let y1 = enc.forward(&x, &DenseAttention).unwrap();
        let y2 = enc.forward(&x, &DenseAttention).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn variable_lengths_supported_without_padding() {
        // The whole point of the paper: the encoder itself has no fixed
        // length — any row count flows through.
        let (cfg, enc, mut rng) = tiny_encoder(25);
        for n in [1usize, 3, 17, 50] {
            let x = rng.gaussian_matrix(n, cfg.hidden_dim, 1.0);
            let y = enc.forward(&x, &DenseAttention).unwrap();
            assert_eq!(y.rows(), n);
        }
    }

    #[test]
    fn qkv_projection_shapes() {
        let (cfg, enc, mut rng) = tiny_encoder(26);
        let x = rng.gaussian_matrix(7, cfg.hidden_dim, 1.0);
        let (q, k, v) = enc.layers()[0].project_qkv(&x).unwrap();
        assert_eq!(q.shape(), (7, cfg.hidden_dim));
        assert_eq!(k.shape(), (7, cfg.hidden_dim));
        assert_eq!(v.shape(), (7, cfg.hidden_dim));
    }

    #[test]
    fn encode_pooled_length_matches_hidden() {
        let (cfg, enc, mut rng) = tiny_encoder(27);
        let x = rng.gaussian_matrix(4, cfg.hidden_dim, 1.0);
        let pooled = enc.encode_pooled(&x, &DenseAttention).unwrap();
        assert_eq!(pooled.len(), cfg.hidden_dim);
        assert!(pooled.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_count_matches_config() {
        let (cfg, enc, _) = tiny_encoder(28);
        assert_eq!(enc.layers().len(), cfg.layers);
    }

    #[test]
    fn feed_forward_shape_roundtrip() {
        let (cfg, enc, mut rng) = tiny_encoder(29);
        let x = rng.gaussian_matrix(3, cfg.hidden_dim, 1.0);
        let y = enc.layers()[0].feed_forward(&x).unwrap();
        assert_eq!(y.shape(), (3, cfg.hidden_dim));
    }
}
