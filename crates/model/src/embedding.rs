//! Deterministic token + positional embeddings.
//!
//! With no pretrained vocabulary available, token embeddings are generated
//! by hashing the token id into a seeded Gaussian draw — every occurrence of
//! token `t` maps to the same vector, across processes and runs. Sinusoidal
//! positional encodings (the original transformer scheme) are added so the
//! encoder sees position information, which the synthetic tasks exploit.

use lat_tensor::rng::SplitMix64;
use lat_tensor::Matrix;

/// A deterministic embedding table driven by a seed rather than storage.
///
/// # Example
///
/// ```
/// use lat_model::embedding::EmbeddingTable;
///
/// let emb = EmbeddingTable::new(64, 0xBEEF);
/// let a = emb.embed_tokens(&[3, 1, 4]);
/// let b = emb.embed_tokens(&[3, 1, 4]);
/// assert_eq!(a, b); // same tokens, same vectors
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbeddingTable {
    dim: usize,
    seed: u64,
}

impl EmbeddingTable {
    /// Creates a table producing `dim`-wide embeddings derived from `seed`.
    pub fn new(dim: usize, seed: u64) -> Self {
        Self { dim, seed }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vector for a single token id (no positional component).
    pub fn token_vector(&self, token: u32) -> Vec<f32> {
        // Mix the token id into the seed so each token gets its own stream.
        let mut rng = SplitMix64::new(self.seed ^ ((token as u64 + 1) * 0x9E37_79B9));
        (0..self.dim)
            .map(|_| rng.next_gaussian() / (self.dim as f32).sqrt() * 4.0)
            .collect()
    }

    /// Embeds a token sequence *without* positional encodings.
    pub fn embed_tokens(&self, tokens: &[u32]) -> Matrix {
        let mut m = Matrix::zeros(tokens.len(), self.dim);
        for (i, &t) in tokens.iter().enumerate() {
            m.row_mut(i).copy_from_slice(&self.token_vector(t));
        }
        m
    }

    /// Embeds a token sequence and adds sinusoidal positional encodings.
    pub fn embed_with_positions(&self, tokens: &[u32]) -> Matrix {
        let mut m = self.embed_tokens(tokens);
        for pos in 0..m.rows() {
            let row = m.row_mut(pos);
            for (j, x) in row.iter_mut().enumerate() {
                *x += positional_component(pos, j, self.dim);
            }
        }
        m
    }
}

/// The sinusoidal positional-encoding component `PE(pos, j)` from
/// *Attention Is All You Need*.
pub fn positional_component(pos: usize, j: usize, dim: usize) -> f32 {
    let i = (j / 2) as f32;
    let denom = 10_000f32.powf(2.0 * i / dim as f32);
    let angle = pos as f32 / denom;
    if j.is_multiple_of(2) {
        angle.sin() * 0.1
    } else {
        angle.cos() * 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_token_same_vector() {
        let emb = EmbeddingTable::new(32, 1);
        assert_eq!(emb.token_vector(5), emb.token_vector(5));
        assert_ne!(emb.token_vector(5), emb.token_vector(6));
    }

    #[test]
    fn different_seed_different_table() {
        let a = EmbeddingTable::new(32, 1);
        let b = EmbeddingTable::new(32, 2);
        assert_ne!(a.token_vector(5), b.token_vector(5));
    }

    #[test]
    fn embed_tokens_shape() {
        let emb = EmbeddingTable::new(16, 3);
        let m = emb.embed_tokens(&[1, 2, 3, 4, 5]);
        assert_eq!(m.shape(), (5, 16));
    }

    #[test]
    fn positions_distinguish_repeated_tokens() {
        let emb = EmbeddingTable::new(16, 4);
        let m = emb.embed_with_positions(&[7, 7]);
        // Same token at different positions must differ once PE is added.
        assert_ne!(m.row(0), m.row(1));
        // Without positions they are identical.
        let m0 = emb.embed_tokens(&[7, 7]);
        assert_eq!(m0.row(0), m0.row(1));
    }

    #[test]
    fn positional_component_bounded() {
        for pos in [0usize, 1, 10, 500] {
            for j in 0..16 {
                let p = positional_component(pos, j, 16);
                assert!(p.abs() <= 0.1 + 1e-6);
            }
        }
    }

    #[test]
    fn embedding_norms_are_stable() {
        // Scaled to keep row norms O(1)-ish so encoders see sane inputs.
        let emb = EmbeddingTable::new(64, 5);
        for t in 0..20u32 {
            let v = emb.token_vector(t);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm > 1.0 && norm < 10.0, "token {t} norm {norm}");
        }
    }
}
