use lat_tensor::ShapeError;
use std::error::Error;
use std::fmt;

/// Errors produced by the model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A tensor operation failed because of mismatched shapes.
    Shape(ShapeError),
    /// The model configuration is internally inconsistent
    /// (e.g. hidden dimension not divisible by the head count).
    InvalidConfig(String),
    /// An input tensor does not match the model's expectations
    /// (e.g. wrong hidden dimension).
    InvalidInput(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Shape(e) => write!(f, "shape error: {e}"),
            ModelError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            ModelError::InvalidInput(msg) => write!(f, "invalid model input: {msg}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for ModelError {
    fn from(e: ShapeError) -> Self {
        ModelError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let s = ModelError::Shape(ShapeError::new("matmul", (1, 2), (3, 4)));
        assert!(s.to_string().contains("matmul"));
        let c = ModelError::InvalidConfig("hidden 10 % heads 3 != 0".into());
        assert!(c.to_string().contains("configuration"));
        let i = ModelError::InvalidInput("expected 768 cols".into());
        assert!(i.to_string().contains("input"));
    }

    #[test]
    fn shape_error_converts() {
        fn fails() -> Result<(), ModelError> {
            Err(ShapeError::new("add", (1, 1), (2, 2)))?;
            Ok(())
        }
        assert!(matches!(fails().unwrap_err(), ModelError::Shape(_)));
    }

    #[test]
    fn source_is_exposed() {
        let e = ModelError::Shape(ShapeError::new("matmul", (1, 2), (3, 4)));
        assert!(std::error::Error::source(&e).is_some());
        let e = ModelError::InvalidConfig("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
