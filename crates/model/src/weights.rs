//! Encoder layer weights with deterministic random initialization.
//!
//! The reproduction has no access to pretrained checkpoints (see DESIGN.md
//! substitution table), so weights are sampled from the initialization
//! distributions the original models use (truncated-normal-ish Gaussians
//! scaled by `1/√d`). All sampling is seeded, making every experiment
//! deterministic.

use crate::config::ModelConfig;
use lat_tensor::rng::SplitMix64;
use lat_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Weights of one encoder layer (Fig. 1(a) parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// Query projection, `d×d`.
    pub w_q: Matrix,
    /// Key projection, `d×d`.
    pub w_k: Matrix,
    /// Value projection, `d×d`.
    pub w_v: Matrix,
    /// Output projection, `d×d`.
    pub w_o: Matrix,
    /// Query bias, length `d`.
    pub b_q: Vec<f32>,
    /// Key bias, length `d`.
    pub b_k: Vec<f32>,
    /// Value bias, length `d`.
    pub b_v: Vec<f32>,
    /// Output bias, length `d`.
    pub b_o: Vec<f32>,
    /// FFN expansion weights, `d×f`.
    pub w_ffn1: Matrix,
    /// FFN expansion bias, length `f`.
    pub b_ffn1: Vec<f32>,
    /// FFN contraction weights, `f×d`.
    pub w_ffn2: Matrix,
    /// FFN contraction bias, length `d`.
    pub b_ffn2: Vec<f32>,
    /// First LayerNorm gamma, length `d`.
    pub ln1_gamma: Vec<f32>,
    /// First LayerNorm beta, length `d`.
    pub ln1_beta: Vec<f32>,
    /// Second LayerNorm gamma, length `d`.
    pub ln2_gamma: Vec<f32>,
    /// Second LayerNorm beta, length `d`.
    pub ln2_beta: Vec<f32>,
}

impl LayerWeights {
    /// Samples one layer of weights for `cfg` from `rng`.
    ///
    /// Projections use `N(0, 1/d)` entries (standard transformer init);
    /// biases start at zero; LayerNorm affine starts at identity.
    pub fn random(cfg: &ModelConfig, rng: &mut SplitMix64) -> Self {
        let d = cfg.hidden_dim;
        let f = cfg.ffn_dim;
        let std_d = 1.0 / (d as f32).sqrt();
        let std_f = 1.0 / (f as f32).sqrt();
        Self {
            w_q: rng.gaussian_matrix(d, d, std_d),
            w_k: rng.gaussian_matrix(d, d, std_d),
            w_v: rng.gaussian_matrix(d, d, std_d),
            w_o: rng.gaussian_matrix(d, d, std_d),
            b_q: vec![0.0; d],
            b_k: vec![0.0; d],
            b_v: vec![0.0; d],
            b_o: vec![0.0; d],
            w_ffn1: rng.gaussian_matrix(d, f, std_d),
            b_ffn1: vec![0.0; f],
            w_ffn2: rng.gaussian_matrix(f, d, std_f),
            b_ffn2: vec![0.0; d],
            ln1_gamma: vec![1.0; d],
            ln1_beta: vec![0.0; d],
            ln2_gamma: vec![1.0; d],
            ln2_beta: vec![0.0; d],
        }
    }

    /// Total number of scalar parameters in this layer.
    pub fn parameter_count(&self) -> usize {
        self.w_q.len()
            + self.w_k.len()
            + self.w_v.len()
            + self.w_o.len()
            + self.b_q.len()
            + self.b_k.len()
            + self.b_v.len()
            + self.b_o.len()
            + self.w_ffn1.len()
            + self.b_ffn1.len()
            + self.w_ffn2.len()
            + self.b_ffn2.len()
            + self.ln1_gamma.len()
            + self.ln1_beta.len()
            + self.ln2_gamma.len()
            + self.ln2_beta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_follow_config() {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(1);
        let w = LayerWeights::random(&cfg, &mut rng);
        assert_eq!(w.w_q.shape(), (64, 64));
        assert_eq!(w.w_ffn1.shape(), (64, 256));
        assert_eq!(w.w_ffn2.shape(), (256, 64));
        assert_eq!(w.b_ffn1.len(), 256);
        assert_eq!(w.ln1_gamma.len(), 64);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ModelConfig::tiny();
        let a = LayerWeights::random(&cfg, &mut SplitMix64::new(9));
        let b = LayerWeights::random(&cfg, &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ModelConfig::tiny();
        let a = LayerWeights::random(&cfg, &mut SplitMix64::new(1));
        let b = LayerWeights::random(&cfg, &mut SplitMix64::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn parameter_count_matches_config_formula() {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(1);
        let w = LayerWeights::random(&cfg, &mut rng);
        assert_eq!(
            w.parameter_count() * cfg.layers,
            cfg.parameter_count(),
            "LayerWeights and ModelConfig::parameter_count disagree"
        );
    }

    #[test]
    fn init_scale_is_inverse_sqrt_d() {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(3);
        let w = LayerWeights::random(&cfg, &mut rng);
        let var: f32 = w.w_q.as_slice().iter().map(|x| x * x).sum::<f32>() / w.w_q.len() as f32;
        let expect = 1.0 / 64.0;
        assert!((var - expect).abs() < expect * 0.5, "var {var} vs {expect}");
    }
}
