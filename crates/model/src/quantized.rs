//! 8-bit quantized encoder inference — the accelerator's datapath.
//!
//! §5.1 of the paper: "The state-of-the-art models are quantized into 8
//! bits fixed-point representation without accuracy drop". This module
//! provides that path in software: weights and activations are quantized
//! per-tensor to 8-bit symmetric integers, matrix products accumulate in
//! `i32` (one DSP MAC chain), and results are re-quantized between
//! operators. Nonlinearities (softmax, GELU, LayerNorm) run at `f32`, as
//! they do on the FPGA's LUT/FF fabric.
//!
//! The module exists to *verify the paper's premise*: the
//! [`QuantizedLayer::forward`] output must track the f32 reference closely
//! enough that task accuracy is unchanged (tested here and in the
//! integration suite).

use crate::attention::AttentionOp;
use crate::encoder::{EncoderLayer, LAYER_NORM_EPS};
use crate::ModelError;
use lat_tensor::quant::{BitWidth, QuantizedMatrix};
use lat_tensor::{ops, Matrix};

/// An encoder layer with 8-bit quantized weights.
///
/// Built from an f32 [`EncoderLayer`]; the projection and FFN weights are
/// stored as 8-bit levels plus scales, and every GEMM runs in integer
/// arithmetic with `i32` accumulation.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    reference: EncoderLayer,
    w_q: QuantizedMatrix,
    w_k: QuantizedMatrix,
    w_v: QuantizedMatrix,
    w_o: QuantizedMatrix,
    w_ffn1: QuantizedMatrix,
    w_ffn2: QuantizedMatrix,
}

impl QuantizedLayer {
    /// Quantizes an f32 layer's weights to 8 bits.
    pub fn from_layer(layer: &EncoderLayer) -> Self {
        let w = layer.weights();
        Self {
            reference: layer.clone(),
            w_q: QuantizedMatrix::quantize(&w.w_q, BitWidth::Eight),
            w_k: QuantizedMatrix::quantize(&w.w_k, BitWidth::Eight),
            w_v: QuantizedMatrix::quantize(&w.w_v, BitWidth::Eight),
            w_o: QuantizedMatrix::quantize(&w.w_o, BitWidth::Eight),
            w_ffn1: QuantizedMatrix::quantize(&w.w_ffn1, BitWidth::Eight),
            w_ffn2: QuantizedMatrix::quantize(&w.w_ffn2, BitWidth::Eight),
        }
    }

    /// Storage the quantized weights occupy, in bytes (8-bit packing).
    pub fn weight_bytes(&self) -> usize {
        (self.w_q.storage_bits()
            + self.w_k.storage_bits()
            + self.w_v.storage_bits()
            + self.w_o.storage_bits()
            + self.w_ffn1.storage_bits()
            + self.w_ffn2.storage_bits())
            / 8
    }

    /// Quantized Q/K/V projection (Stage 1 MM on the 8-bit datapath).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `x` has the wrong hidden dimension.
    pub fn project_qkv(&self, x: &Matrix) -> Result<(Matrix, Matrix, Matrix), ModelError> {
        let w = self.reference.weights();
        let q = quantized_matmul(x, &self.w_q)?.add_row_bias(&w.b_q)?;
        let k = quantized_matmul(x, &self.w_k)?.add_row_bias(&w.b_k)?;
        let v = quantized_matmul(x, &self.w_v)?.add_row_bias(&w.b_v)?;
        Ok((q, k, v))
    }

    /// Full layer forward on the quantized datapath with attention
    /// operator `op`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch or operator failure.
    pub fn forward(&self, x: &Matrix, op: &dyn AttentionOp) -> Result<Matrix, ModelError> {
        let w = self.reference.weights();
        let (q, k, v) = self.project_qkv(x)?;
        // Per-head attention runs through the provided operator (which in
        // the accelerator is the sparse Stage-2 hardware); head splitting
        // mirrors EncoderLayer::multi_head_attention.
        // Per-head attention runs through the provided operator (the sparse
        // Stage-2 hardware on the accelerator); head splitting reuses the
        // reference implementation, but the output projection below runs on
        // the quantized datapath rather than inside it.
        let attn = self.reference.multi_head_attention_concat(&q, &k, &v, op)?;
        let proj = quantized_matmul(&attn, &self.w_o)?.add_row_bias(&w.b_o)?;
        let res1 = x.add(&proj)?;
        let norm1 = ops::layer_norm(&res1, &w.ln1_gamma, &w.ln1_beta, LAYER_NORM_EPS);
        let inner = quantized_matmul(&norm1, &self.w_ffn1)?.add_row_bias(&w.b_ffn1)?;
        let act = ops::gelu_matrix(&inner);
        let ffn = quantized_matmul(&act, &self.w_ffn2)?.add_row_bias(&w.b_ffn2)?;
        let res2 = norm1.add(&ffn)?;
        Ok(ops::layer_norm(
            &res2,
            &w.ln2_gamma,
            &w.ln2_beta,
            LAYER_NORM_EPS,
        ))
    }
}

/// A full encoder stack on the 8-bit quantized datapath.
///
/// # Example
///
/// ```
/// use lat_model::{config::ModelConfig, encoder::Encoder};
/// use lat_model::quantized::QuantizedEncoder;
/// use lat_model::attention::DenseAttention;
/// use lat_tensor::rng::SplitMix64;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let cfg = ModelConfig::tiny();
/// let mut rng = SplitMix64::new(1);
/// let f32_encoder = Encoder::random(&cfg, &mut rng);
/// let q_encoder = QuantizedEncoder::from_encoder(&f32_encoder);
/// let x = rng.gaussian_matrix(8, cfg.hidden_dim, 1.0);
/// let y = q_encoder.forward(&x, &DenseAttention)?;
/// assert_eq!(y.shape(), (8, cfg.hidden_dim));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedEncoder {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedEncoder {
    /// Quantizes every layer of an f32 encoder to 8 bits.
    pub fn from_encoder(encoder: &crate::encoder::Encoder) -> Self {
        Self {
            layers: encoder
                .layers()
                .iter()
                .map(QuantizedLayer::from_layer)
                .collect(),
        }
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Total quantized weight storage in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(QuantizedLayer::weight_bytes).sum()
    }

    /// Full stack forward on the 8-bit datapath.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the input shape is wrong or any layer
    /// fails.
    pub fn forward(&self, x: &Matrix, op: &dyn AttentionOp) -> Result<Matrix, ModelError> {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h, op)?;
        }
        Ok(h)
    }
}

/// `x · Wq` where `Wq` is an 8-bit quantized weight matrix: activations are
/// quantized per-tensor to 8 bits, the product accumulates in `i32`, and
/// the result is rescaled to f32.
///
/// # Errors
///
/// Returns [`ModelError::Shape`] if the inner dimensions differ.
pub fn quantized_matmul(x: &Matrix, w: &QuantizedMatrix) -> Result<Matrix, ModelError> {
    if x.cols() != w.rows() {
        return Err(ModelError::Shape(lat_tensor::ShapeError::new(
            "quantized_matmul",
            x.shape(),
            (w.rows(), w.cols()),
        )));
    }
    let xq = QuantizedMatrix::quantize(x, BitWidth::Eight);
    let scale = xq.scale() * w.scale();
    let mut out = Matrix::zeros(x.rows(), w.cols());
    // i32 accumulation over k; weight stored row-major (k × n).
    for i in 0..x.rows() {
        let xrow = xq.level_row(i);
        for j in 0..w.cols() {
            let mut acc = 0i32;
            for (kk, &xl) in xrow.iter().enumerate() {
                acc += xl as i32 * w.level_row(kk)[j] as i32;
            }
            out[(i, j)] = acc as f32 * scale;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::DenseAttention;
    use crate::config::ModelConfig;
    use lat_tensor::rng::SplitMix64;

    fn layer(seed: u64) -> (ModelConfig, EncoderLayer, SplitMix64) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed);
        let layer = EncoderLayer::random(&cfg, &mut rng);
        (cfg, layer, rng)
    }

    #[test]
    fn quantized_matmul_tracks_float() {
        let (_, layer, mut rng) = layer(81);
        let x = rng.gaussian_matrix(6, 64, 1.0);
        let qw = QuantizedMatrix::quantize(&layer.weights().w_q, BitWidth::Eight);
        let quant = quantized_matmul(&x, &qw).unwrap();
        let float = x.matmul(&layer.weights().w_q).unwrap();
        let rel = quant.sub(&float).unwrap().frobenius_norm() / float.frobenius_norm();
        assert!(rel < 0.03, "relative error {rel}");
    }

    #[test]
    fn quantized_matmul_shape_error() {
        let (_, layer, mut rng) = layer(82);
        let x = rng.gaussian_matrix(3, 10, 1.0);
        let qw = QuantizedMatrix::quantize(&layer.weights().w_q, BitWidth::Eight);
        assert!(quantized_matmul(&x, &qw).is_err());
    }

    #[test]
    fn quantized_forward_close_to_f32_forward() {
        // The §5.1 premise: 8-bit inference ≈ f32 inference.
        let (cfg, layer, mut rng) = layer(83);
        let qlayer = QuantizedLayer::from_layer(&layer);
        let x = rng.gaussian_matrix(12, cfg.hidden_dim, 1.0);
        let f32_out = layer.forward(&x, &DenseAttention).unwrap();
        let q_out = qlayer.forward(&x, &DenseAttention).unwrap();
        let mut cos = 0.0;
        for i in 0..f32_out.rows() {
            cos += ops::cosine_similarity(f32_out.row(i), q_out.row(i));
        }
        cos /= f32_out.rows() as f32;
        assert!(cos > 0.99, "8-bit forward cosine {cos}");
    }

    #[test]
    fn quantized_encoder_stack_tracks_f32_stack() {
        use crate::encoder::Encoder;
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(85);
        let f32_enc = Encoder::random(&cfg, &mut rng);
        let q_enc = QuantizedEncoder::from_encoder(&f32_enc);
        assert_eq!(q_enc.layers().len(), cfg.layers);
        let x = rng.gaussian_matrix(10, cfg.hidden_dim, 1.0);
        let a = f32_enc.forward(&x, &DenseAttention).unwrap();
        let b = q_enc.forward(&x, &DenseAttention).unwrap();
        let mut cos = 0.0;
        for i in 0..a.rows() {
            cos += ops::cosine_similarity(a.row(i), b.row(i));
        }
        cos /= a.rows() as f32;
        // Error accumulates over layers but stays small over 2 layers.
        assert!(cos > 0.97, "stacked 8-bit cosine {cos}");
    }

    #[test]
    fn quantized_encoder_storage_sums_layers() {
        use crate::encoder::Encoder;
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(86);
        let enc = Encoder::random(&cfg, &mut rng);
        let q = QuantizedEncoder::from_encoder(&enc);
        let per_layer = q.layers()[0].weight_bytes();
        assert_eq!(q.weight_bytes(), per_layer * cfg.layers);
    }

    #[test]
    fn weight_bytes_accounting() {
        let (cfg, layer, _) = layer(84);
        let qlayer = QuantizedLayer::from_layer(&layer);
        let d = cfg.hidden_dim;
        let f = cfg.ffn_dim;
        assert_eq!(qlayer.weight_bytes(), 4 * d * d + 2 * d * f);
    }
}
