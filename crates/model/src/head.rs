//! Pooling and classification heads — the task layer on top of the
//! encoder (GLUE-style classification as in RTE/MRPC, span-free SQuAD
//! proxy).

use crate::ModelError;
use lat_tensor::rng::SplitMix64;
use lat_tensor::{ops, Matrix};

/// Mean-pools token representations into one sentence vector.
pub fn mean_pool(hidden: &Matrix) -> Vec<f32> {
    let n = hidden.rows().max(1) as f32;
    let mut pooled = vec![0.0f32; hidden.cols()];
    for i in 0..hidden.rows() {
        for (acc, &v) in pooled.iter_mut().zip(hidden.row(i)) {
            *acc += v / n;
        }
    }
    pooled
}

/// CLS-pooling: the first token's representation (BERT's convention).
///
/// # Panics
///
/// Panics if `hidden` has no rows.
pub fn cls_pool(hidden: &Matrix) -> Vec<f32> {
    assert!(hidden.rows() > 0, "cannot CLS-pool an empty sequence");
    hidden.row(0).to_vec()
}

/// A linear classification head over pooled sentence vectors.
///
/// # Example
///
/// ```
/// use lat_model::head::ClassifierHead;
/// use lat_tensor::rng::SplitMix64;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let mut rng = SplitMix64::new(1);
/// let head = ClassifierHead::random(16, 3, &mut rng);
/// let logits = head.logits(&vec![0.1; 16])?;
/// assert_eq!(logits.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierHead {
    weights: Matrix,
    bias: Vec<f32>,
}

impl ClassifierHead {
    /// Builds a head from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `bias.len() != weights.cols()`.
    pub fn new(weights: Matrix, bias: Vec<f32>) -> Result<Self, ModelError> {
        if bias.len() != weights.cols() {
            return Err(ModelError::InvalidConfig(format!(
                "bias length {} != class count {}",
                bias.len(),
                weights.cols()
            )));
        }
        Ok(Self { weights, bias })
    }

    /// Samples a random head mapping `hidden_dim` features to
    /// `num_classes` logits.
    pub fn random(hidden_dim: usize, num_classes: usize, rng: &mut SplitMix64) -> Self {
        Self {
            weights: rng.gaussian_matrix(hidden_dim, num_classes, 1.0 / (hidden_dim as f32).sqrt()),
            bias: vec![0.0; num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.weights.cols()
    }

    /// Raw logits for a pooled vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] if the vector width is wrong.
    pub fn logits(&self, pooled: &[f32]) -> Result<Vec<f32>, ModelError> {
        if pooled.len() != self.weights.rows() {
            return Err(ModelError::InvalidInput(format!(
                "pooled width {} != head input {}",
                pooled.len(),
                self.weights.rows()
            )));
        }
        let mut out = self.bias.clone();
        for (i, &x) in pooled.iter().enumerate() {
            for (o, &w) in out.iter_mut().zip(self.weights.row(i)) {
                *o += x * w;
            }
        }
        Ok(out)
    }

    /// Class probabilities (softmax over logits).
    ///
    /// # Errors
    ///
    /// As for [`ClassifierHead::logits`].
    pub fn probabilities(&self, pooled: &[f32]) -> Result<Vec<f32>, ModelError> {
        let mut logits = self.logits(pooled)?;
        ops::softmax_in_place(&mut logits);
        Ok(logits)
    }

    /// Predicted class (argmax of logits).
    ///
    /// # Errors
    ///
    /// As for [`ClassifierHead::logits`].
    pub fn predict(&self, pooled: &[f32]) -> Result<usize, ModelError> {
        let logits = self.logits(pooled)?;
        Ok(ops::argmax(&logits).expect("at least one class"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_averages_rows() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]).unwrap();
        assert_eq!(mean_pool(&m), vec![2.0, 4.0]);
    }

    #[test]
    fn cls_pool_takes_first_row() {
        let m = Matrix::from_rows(&[&[7.0, 8.0], &[0.0, 0.0]]).unwrap();
        assert_eq!(cls_pool(&m), vec![7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn cls_pool_empty_panics() {
        let _ = cls_pool(&Matrix::zeros(0, 4));
    }

    #[test]
    fn head_rejects_bad_bias() {
        let w = Matrix::zeros(4, 3);
        assert!(ClassifierHead::new(w, vec![0.0; 2]).is_err());
    }

    #[test]
    fn logits_linear_in_input() {
        let w = Matrix::identity(3);
        let head = ClassifierHead::new(w, vec![1.0, 0.0, -1.0]).unwrap();
        let l = head.logits(&[2.0, 3.0, 4.0]).unwrap();
        assert_eq!(l, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn logits_width_checked() {
        let mut rng = SplitMix64::new(1);
        let head = ClassifierHead::random(8, 2, &mut rng);
        assert!(head.logits(&[0.0; 5]).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = SplitMix64::new(2);
        let head = ClassifierHead::random(8, 4, &mut rng);
        let p = head.probabilities(&[0.3; 8]).unwrap();
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn predict_matches_argmax_of_logits() {
        let mut rng = SplitMix64::new(3);
        let head = ClassifierHead::random(8, 4, &mut rng);
        let pooled: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let logits = head.logits(&pooled).unwrap();
        let argmax = ops::argmax(&logits).unwrap();
        assert_eq!(head.predict(&pooled).unwrap(), argmax);
    }
}
