//! Model architecture configurations (paper Table 1).

use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hyper-parameters of a BERT-family encoder stack.
///
/// The four presets reproduce Table 1 of the paper:
///
/// | Model | Layers | Hidden dim | Heads |
/// |---|---|---|---|
/// | DistilBERT | 6 | 768 | 12 |
/// | BERT-base / RoBERTa | 12 | 768 | 12 |
/// | BERT-large | 24 | 1024 | 16 |
///
/// # Example
///
/// ```
/// use lat_model::config::ModelConfig;
///
/// let cfg = ModelConfig::bert_base();
/// assert_eq!(cfg.layers, 12);
/// assert_eq!(cfg.head_dim(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Number of stacked encoder layers.
    pub layers: usize,
    /// Hidden (embedding) dimension `d`.
    pub hidden_dim: usize,
    /// Number of attention heads `h`.
    pub num_heads: usize,
    /// Feed-forward inner dimension (4·d for all BERT variants).
    pub ffn_dim: usize,
    /// Maximum sequence length the model supports.
    pub max_seq_len: usize,
}

impl ModelConfig {
    /// Builds a configuration, validating internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if any dimension is zero or the
    /// hidden dimension is not divisible by the head count.
    pub fn new(
        name: impl Into<String>,
        layers: usize,
        hidden_dim: usize,
        num_heads: usize,
        ffn_dim: usize,
        max_seq_len: usize,
    ) -> Result<Self, ModelError> {
        let cfg = Self {
            name: name.into(),
            layers,
            hidden_dim,
            num_heads,
            ffn_dim,
            max_seq_len,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.layers == 0 || self.hidden_dim == 0 || self.num_heads == 0 || self.ffn_dim == 0 {
            return Err(ModelError::InvalidConfig(
                "all dimensions must be non-zero".into(),
            ));
        }
        if !self.hidden_dim.is_multiple_of(self.num_heads) {
            return Err(ModelError::InvalidConfig(format!(
                "hidden_dim {} not divisible by num_heads {}",
                self.hidden_dim, self.num_heads
            )));
        }
        if self.max_seq_len == 0 {
            return Err(ModelError::InvalidConfig("max_seq_len must be > 0".into()));
        }
        Ok(())
    }

    /// DistilBERT: 6 layers, 768 hidden, 12 heads.
    pub fn distilbert() -> Self {
        Self::new("DistilBERT", 6, 768, 12, 3072, 512).expect("preset is valid")
    }

    /// BERT-base: 12 layers, 768 hidden, 12 heads.
    pub fn bert_base() -> Self {
        Self::new("BERT-base", 12, 768, 12, 3072, 512).expect("preset is valid")
    }

    /// RoBERTa-base: architecturally identical to BERT-base.
    pub fn roberta() -> Self {
        Self::new("RoBERTa", 12, 768, 12, 3072, 512).expect("preset is valid")
    }

    /// BERT-large: 24 layers, 1024 hidden, 16 heads.
    pub fn bert_large() -> Self {
        Self::new("BERT-large", 24, 1024, 16, 4096, 512).expect("preset is valid")
    }

    /// A deliberately small configuration for unit tests and examples
    /// (2 layers, 64 hidden, 4 heads, 256 FFN).
    pub fn tiny() -> Self {
        Self::new("tiny", 2, 64, 4, 256, 128).expect("preset is valid")
    }

    /// All four paper presets, in Table 1 order.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            Self::distilbert(),
            Self::bert_base(),
            Self::roberta(),
            Self::bert_large(),
        ]
    }

    /// Per-head dimension `d / h`.
    pub fn head_dim(&self) -> usize {
        self.hidden_dim / self.num_heads
    }

    /// Total parameter count of the encoder stack (weights + biases +
    /// LayerNorm affine), excluding embeddings.
    pub fn parameter_count(&self) -> usize {
        let d = self.hidden_dim;
        let f = self.ffn_dim;
        // Per layer: 4 d×d projections + biases, 2 FFN mats + biases, 2 LN.
        let per_layer = 4 * (d * d + d) + (d * f + f) + (f * d + d) + 2 * (2 * d);
        self.layers * per_layer
    }

    /// FLOPs of one full encoder stack forward pass at sequence length `s`
    /// with *dense* attention (the padding-free ideal; multiply-accumulate
    /// counted as 2 FLOPs).
    pub fn flops_dense(&self, s: usize) -> u64 {
        crate::graph::OperatorGraph::encoder(self)
            .total_flops_dense(s)
            .saturating_mul(self.layers as u64)
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L={}, d={}, h={}, ffn={})",
            self.name, self.layers, self.hidden_dim, self.num_heads, self.ffn_dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let db = ModelConfig::distilbert();
        assert_eq!((db.layers, db.hidden_dim, db.num_heads), (6, 768, 12));
        let bb = ModelConfig::bert_base();
        assert_eq!((bb.layers, bb.hidden_dim, bb.num_heads), (12, 768, 12));
        let rb = ModelConfig::roberta();
        assert_eq!((rb.layers, rb.hidden_dim, rb.num_heads), (12, 768, 12));
        let bl = ModelConfig::bert_large();
        assert_eq!((bl.layers, bl.hidden_dim, bl.num_heads), (24, 1024, 16));
    }

    #[test]
    fn head_dim_divides() {
        assert_eq!(ModelConfig::bert_base().head_dim(), 64);
        assert_eq!(ModelConfig::bert_large().head_dim(), 64);
        assert_eq!(ModelConfig::tiny().head_dim(), 16);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ModelConfig::new("bad", 0, 768, 12, 3072, 512).is_err());
        assert!(ModelConfig::new("bad", 2, 100, 3, 400, 512).is_err());
        assert!(ModelConfig::new("bad", 2, 64, 4, 0, 512).is_err());
        assert!(ModelConfig::new("bad", 2, 64, 4, 256, 0).is_err());
    }

    #[test]
    fn bert_base_parameter_count_plausible() {
        // BERT-base encoder stack is ~85M params (110M with embeddings).
        let p = ModelConfig::bert_base().parameter_count();
        assert!(p > 80_000_000 && p < 90_000_000, "params = {p}");
    }

    #[test]
    fn bert_large_has_more_params_than_base() {
        assert!(
            ModelConfig::bert_large().parameter_count()
                > 3 * ModelConfig::bert_base().parameter_count()
        );
    }

    #[test]
    fn flops_scale_superlinearly_in_length() {
        let cfg = ModelConfig::bert_base();
        let f128 = cfg.flops_dense(128);
        let f256 = cfg.flops_dense(256);
        // Attention is quadratic, so doubling length more than doubles FLOPs.
        assert!(f256 > 2 * f128);
        assert!(f256 < 5 * f128);
    }

    #[test]
    fn display_contains_name() {
        assert!(ModelConfig::bert_base().to_string().contains("BERT-base"));
    }

    #[test]
    fn paper_models_has_four() {
        assert_eq!(ModelConfig::paper_models().len(), 4);
    }
}
