//! Property-based tests of the encoder substrate.

use lat_model::attention::{AttentionOp, DenseAttention, PaddedDenseAttention};
use lat_model::config::ModelConfig;
use lat_model::encoder::{Encoder, EncoderLayer};
use lat_model::graph::{AttentionMode, OpKind, OperatorGraph};
use lat_tensor::rng::SplitMix64;
use proptest::prelude::*;

/// Valid model configurations: hidden divisible by heads.
fn config_strategy() -> impl Strategy<Value = ModelConfig> {
    (1usize..3, 1usize..5, 4usize..17).prop_map(|(layers, heads, head_dim)| {
        let hidden = heads * head_dim;
        ModelConfig::new("prop", layers, hidden, heads, 2 * hidden, 128)
            .expect("constructed to be valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid configuration produces a working encoder whose forward
    /// pass preserves (rows, hidden) for any sequence length.
    #[test]
    fn forward_shape_invariance(cfg in config_strategy(), n in 1usize..24, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let enc = Encoder::random(&cfg, &mut rng);
        let x = rng.gaussian_matrix(n, cfg.hidden_dim, 1.0);
        let y = enc.forward(&x, &DenseAttention).expect("forward");
        prop_assert_eq!(y.shape(), (n, cfg.hidden_dim));
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Attention output rows are convex combinations of V rows, so the
    /// multi-head output before projection is bounded by V's range.
    #[test]
    fn dense_attention_is_averaging(seed in 0u64..10_000, n in 2usize..12) {
        let mut rng = SplitMix64::new(seed);
        let q = rng.gaussian_matrix(n, 8, 1.0);
        let k = rng.gaussian_matrix(n, 8, 1.0);
        let v = rng.gaussian_matrix(n, 8, 1.0);
        let out = DenseAttention.attend(&q, &k, &v).expect("attend");
        for j in 0..8 {
            let col = v.col(j);
            let lo = col.iter().cloned().fold(f32::INFINITY, f32::min) - 1e-4;
            let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max) + 1e-4;
            for i in 0..n {
                prop_assert!(out[(i, j)] >= lo && out[(i, j)] <= hi);
            }
        }
    }

    /// Padded dense attention agrees with unpadded attention on the valid
    /// prefix for any split point.
    #[test]
    fn padded_prefix_agreement(seed in 0u64..10_000, n in 2usize..10, extra in 1usize..6) {
        let mut rng = SplitMix64::new(seed ^ 0x44);
        let total = n + extra;
        let q = rng.gaussian_matrix(total, 8, 1.0);
        let k = rng.gaussian_matrix(total, 8, 1.0);
        let v = rng.gaussian_matrix(total, 8, 1.0);
        let padded = PaddedDenseAttention { valid_len: n }.attend(&q, &k, &v).expect("attend");
        let exact = DenseAttention
            .attend(&q.head_rows(n), &k.head_rows(n), &v.head_rows(n))
            .expect("attend");
        for i in 0..n {
            for j in 0..8 {
                prop_assert!((padded[(i, j)] - exact[(i, j)]).abs() < 1e-4);
            }
        }
    }

    /// Operator FLOPs are monotone in sequence length for every operator
    /// and mode.
    #[test]
    fn flops_monotone_in_length(s in 2usize..500, delta in 1usize..100) {
        let graph = OperatorGraph::encoder(&ModelConfig::bert_base());
        for mode in [AttentionMode::Dense, AttentionMode::paper_sparse()] {
            for kind in OpKind::all() {
                prop_assert!(
                    graph.flops(kind, s + delta, mode) >= graph.flops(kind, s, mode),
                    "{kind} not monotone under {mode:?}"
                );
            }
        }
    }

    /// Above the crossover (sequence length comfortably beyond k), sparse
    /// attention FLOPs never exceed dense FLOPs. Just above s = k the
    /// pre-selection pass makes sparse genuinely *more* expensive — the
    /// crossover the paper's k = 30 design point sits well below for its
    /// datasets (avg lengths 53–177).
    #[test]
    fn sparse_never_costs_more_above_crossover(s in 60usize..600) {
        let graph = OperatorGraph::encoder(&ModelConfig::bert_base());
        let sparse = graph.attention_flops(s, AttentionMode::paper_sparse());
        let dense = graph.attention_flops(s, AttentionMode::Dense);
        prop_assert!(sparse <= dense, "sparse {sparse} > dense {dense} at s={s}");
    }

    /// QKV projection is linear: projecting a scaled input scales the
    /// projection (biases are zero at init).
    #[test]
    fn qkv_projection_linear(seed in 0u64..10_000, alpha in 0.1f32..3.0) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed ^ 0x77);
        let layer = EncoderLayer::random(&cfg, &mut rng);
        let x = rng.gaussian_matrix(4, cfg.hidden_dim, 1.0);
        let (q1, _, _) = layer.project_qkv(&x).expect("project");
        let (q2, _, _) = layer.project_qkv(&x.scaled(alpha)).expect("project");
        let mse = q2.mse(&q1.scaled(alpha)).expect("same shape");
        let norm = q1.frobenius_norm().max(1e-3);
        prop_assert!(mse.sqrt() / norm < 1e-3, "nonlinearity detected: {mse}");
    }
}
