//! Declarative experiment harness over the serving engines.
//!
//! A [`plan::SweepPlan`] names a grid of engine configurations; the
//! [`runner`] expands it into cells in a fixed order, fans the cells over
//! the deterministic worker pool ([`lat_core::pool::Scheduler`]), and
//! renders the results as a canonical-JSON artifact sealed with a stable
//! content fingerprint ([`artifact`]). Artifacts carry **no wall-clock
//! values** — two runs of the same plan on any machine, at any worker
//! count, produce byte-identical documents, which is what makes the
//! committed golden pack (`crates/exp/expected/`) a meaningful CI gate:
//! `analyze --check expected/` regenerates every plan and fails on the
//! first divergent byte.
//!
//! # Example
//!
//! A one-cell plan run to a sealed artifact, and the invariance that
//! makes the golden pack possible — worker count never changes a byte:
//!
//! ```
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_core::pool::Scheduler;
//! use lat_core::sketch::ReportMode;
//! use lat_exp::artifact::verify_seal;
//! use lat_exp::plan::SweepPlan;
//! use lat_exp::runner::run_plan;
//! use lat_hwsim::fleet::DispatchPolicy;
//!
//! let plan = SweepPlan {
//!     name: "doc_smoke",
//!     description: "one-cell docs example",
//!     requests: 16,
//!     shards: 1,
//!     dispatch: vec![DispatchPolicy::JoinShortestQueue],
//!     scheduling: vec![SchedulingPolicy::LengthAware],
//!     rates_seq_s: vec![400.0],
//!     mode: ReportMode::Exact,
//! };
//! let serial = run_plan(&plan, &Scheduler::serial());
//! verify_seal(&serial).expect("fresh artifact carries a valid seal");
//! assert_eq!(serial, run_plan(&plan, &Scheduler::new(2)));
//! ```

pub mod artifact;
pub mod plan;
pub mod runner;
