//! Declarative experiment harness over the serving engines.
//!
//! A [`plan::SweepPlan`] names a grid of engine configurations; the
//! [`runner`] expands it into cells in a fixed order, fans the cells over
//! the deterministic worker pool ([`lat_core::pool::Scheduler`]), and
//! renders the results as a canonical-JSON artifact sealed with a stable
//! content fingerprint ([`artifact`]). Artifacts carry **no wall-clock
//! values** — two runs of the same plan on any machine, at any worker
//! count, produce byte-identical documents, which is what makes the
//! committed golden pack (`crates/exp/expected/`) a meaningful CI gate:
//! `analyze --check expected/` regenerates every plan and fails on the
//! first divergent byte.

pub mod artifact;
pub mod plan;
pub mod runner;
