//! Plan execution: expand cells, fan over the worker pool, render a
//! sealed canonical artifact.
//!
//! Determinism contract: a plan's artifact is a pure function of the
//! plan and the harness seed. Cells are scattered by index
//! ([`Scheduler::par_map_indexed`]), the engines are deterministic, and
//! no wall-clock value is recorded — so worker count never changes a
//! byte, which the merge-invariance test below pins.

use lat_bench::scenarios::harness_seed;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_core::sketch::ReportMode;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::decode::{decode_trace, DecodeConfig, DecodeRequest, DecodeScheduler};
use lat_hwsim::disagg::{simulate_disaggregated, DisaggConfig};
use lat_hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet_instrumented, DispatchPolicy, FleetReport,
    FleetRunStats,
};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_workloads::datasets::DatasetSpec;
use lat_workloads::prefix::PrefixGroup;
use serde::json::Value;

use crate::artifact::seal;
use crate::plan::{dispatch_label, scheduling_label, Cell, DisaggCell, DisaggPlan, SweepPlan};

/// Artifact schema version for every plan document.
pub const ARTIFACT_SCHEMA: u64 = 1;

/// Runs one plan to a sealed artifact document.
pub fn run_plan(plan: &SweepPlan, pool: &Scheduler) -> Value {
    let design = AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        64,
    );
    let fleet = homogeneous_fleet(&design, plan.shards);
    let cells = plan.cells();
    let rows = pool.par_map_indexed(&cells, |cell| run_cell(plan, cell, &fleet));
    let body = Value::obj([
        ("schema".into(), Value::UInt(ARTIFACT_SCHEMA)),
        ("plan".into(), Value::Str(plan.name.into())),
        ("description".into(), Value::Str(plan.description.into())),
        ("seed".into(), Value::Str(format!("{:#x}", harness_seed()))),
        ("mode".into(), Value::Str(mode_label(plan.mode).into())),
        ("requests".into(), Value::UInt(plan.requests as u64)),
        ("shards".into(), Value::UInt(plan.shards as u64)),
        ("cells".into(), Value::Arr(rows)),
    ]);
    seal(body)
}

fn mode_label(mode: ReportMode) -> &'static str {
    match mode {
        ReportMode::Exact => "exact",
        ReportMode::Streaming => "streaming",
    }
}

fn run_cell(
    plan: &SweepPlan,
    cell: &Cell,
    fleet: &[lat_hwsim::accelerator::AcceleratorDesign],
) -> Value {
    let trace = poisson_trace(
        &DatasetSpec::rte(),
        cell.rate_seq_s,
        plan.requests,
        harness_seed(),
    );
    let cfg = lat_hwsim::fleet::BatcherConfig::default();
    let run = |mode| {
        simulate_fleet_instrumented(fleet, &trace, cell.scheduling, cell.dispatch, &cfg, mode)
    };
    let (report, stats) = run(plan.mode);
    let mut fields = vec![
        ("cell".to_string(), Value::UInt(cell.index as u64)),
        (
            "dispatch".to_string(),
            Value::Str(dispatch_label(cell.dispatch).into()),
        ),
        (
            "scheduling".to_string(),
            Value::Str(scheduling_label(cell.scheduling)),
        ),
        ("rate_seq_s".to_string(), Value::Float(cell.rate_seq_s)),
    ];
    fields.extend(report_fields(&report, &stats));
    if plan.mode == ReportMode::Streaming {
        // Fidelity record: the exact run of the same cell, and the
        // absolute sketch error on each percentile. (No wall-clock —
        // both runs are deterministic.)
        let (exact, _) = run(ReportMode::Exact);
        for (tag, s, e) in [
            ("p50", report.p50_latency_s, exact.p50_latency_s),
            ("p95", report.p95_latency_s, exact.p95_latency_s),
            ("p99", report.p99_latency_s, exact.p99_latency_s),
        ] {
            fields.push((format!("exact_{tag}_latency_s"), Value::Float(e)));
            fields.push((format!("sketch_abs_err_{tag}"), Value::Float((s - e).abs())));
        }
    }
    Value::obj(fields)
}

fn report_fields(r: &FleetReport, stats: &FleetRunStats) -> Vec<(String, Value)> {
    vec![
        ("completed".into(), Value::UInt(r.completed as u64)),
        (
            "batches".into(),
            Value::UInt(r.shards.iter().map(|s| s.batches as u64).sum()),
        ),
        ("makespan_s".into(), Value::Float(r.makespan_s)),
        ("throughput_seq_s".into(), Value::Float(r.throughput_seq_s)),
        ("mean_batch_size".into(), Value::Float(r.mean_batch_size)),
        ("mean_latency_s".into(), Value::Float(r.mean_latency_s)),
        ("p50_latency_s".into(), Value::Float(r.p50_latency_s)),
        ("p95_latency_s".into(), Value::Float(r.p95_latency_s)),
        ("p99_latency_s".into(), Value::Float(r.p99_latency_s)),
        (
            "events_processed".into(),
            Value::UInt(stats.events_processed),
        ),
        (
            "peak_heap_events".into(),
            Value::UInt(stats.peak_heap_events as u64),
        ),
        (
            "retained_latency_samples".into(),
            Value::UInt(stats.retained_latency_samples as u64),
        ),
    ]
}

/// Runs one disaggregation plan to a sealed artifact document. Same
/// determinism contract as [`run_plan`]: the document is a pure function
/// of the plan and the harness seed.
pub fn run_disagg_plan(plan: &DisaggPlan, pool: &Scheduler) -> Value {
    let design = AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        64,
    );
    let prefill_pool = homogeneous_fleet(&design, plan.prefill_shards);
    let decode_pool = homogeneous_fleet(&design, plan.decode_shards);
    let prompts = DatasetSpec::rte();
    let outputs = prompts.decode_output();
    let trace = decode_trace(
        &prompts,
        &outputs,
        0.0,
        plan.rate_seq_s,
        plan.requests,
        harness_seed(),
    );
    let prefixes = plan.prefix.assign(trace.len(), harness_seed());
    let cells = plan.cells();
    let rows = pool.par_map_indexed(&cells, |cell| {
        run_disagg_cell(cell, &prefill_pool, &decode_pool, &trace, &prefixes)
    });
    let body = Value::obj([
        ("schema".into(), Value::UInt(ARTIFACT_SCHEMA)),
        ("plan".into(), Value::Str(plan.name.into())),
        ("description".into(), Value::Str(plan.description.into())),
        ("seed".into(), Value::Str(format!("{:#x}", harness_seed()))),
        ("requests".into(), Value::UInt(plan.requests as u64)),
        (
            "prefill_shards".into(),
            Value::UInt(plan.prefill_shards as u64),
        ),
        (
            "decode_shards".into(),
            Value::UInt(plan.decode_shards as u64),
        ),
        ("rate_seq_s".into(), Value::Float(plan.rate_seq_s)),
        ("cells".into(), Value::Arr(rows)),
    ]);
    seal(body)
}

fn run_disagg_cell(
    cell: &DisaggCell,
    prefill_pool: &[AcceleratorDesign],
    decode_pool: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<PrefixGroup>],
) -> Value {
    let r = simulate_disaggregated(
        prefill_pool,
        decode_pool,
        trace,
        prefixes,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        DecodeScheduler::Continuous,
        &DecodeConfig::default(),
        &DisaggConfig {
            transfer: cell.transfer,
            prefix_cache_capacity: cell.capacity,
        },
    );
    Value::obj([
        ("cell".to_string(), Value::UInt(cell.index as u64)),
        (
            "transfer".to_string(),
            Value::Str(cell.transfer_label.into()),
        ),
        ("capacity".to_string(), Value::UInt(cell.capacity as u64)),
        (
            "completed".to_string(),
            Value::UInt(r.decode.fleet.completed as u64),
        ),
        (
            "makespan_s".to_string(),
            Value::Float(r.decode.fleet.makespan_s),
        ),
        (
            "goodput_tok_s".to_string(),
            Value::Float(r.decode.goodput_tok_s),
        ),
        ("ttft_p95_s".to_string(), Value::Float(r.decode.ttft_p95_s)),
        ("transfers".to_string(), Value::UInt(r.transfers as u64)),
        (
            "transferred_tokens".to_string(),
            Value::UInt(r.transferred_tokens),
        ),
        (
            "transfer_time_s".to_string(),
            Value::Float(r.transfer_time_s),
        ),
        ("hits".to_string(), Value::UInt(r.prefix.hits as u64)),
        ("misses".to_string(), Value::UInt(r.prefix.misses as u64)),
        (
            "evictions".to_string(),
            Value::UInt(r.prefix.evictions as u64),
        ),
        (
            "tokens_saved".to_string(),
            Value::UInt(r.prefix.tokens_saved),
        ),
        (
            "prefill_utilization".to_string(),
            Value::Float(r.prefill_pool.utilization),
        ),
        (
            "decode_utilization".to_string(),
            Value::Float(r.decode_pool.utilization),
        ),
        (
            "prefill_iterations".to_string(),
            Value::UInt(r.prefill_pool.iterations as u64),
        ),
        (
            "decode_iterations".to_string(),
            Value::UInt(r.decode_pool.iterations as u64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::verify_seal;
    use crate::plan::builtin_plans;

    /// Worker count must never change an artifact byte — the pool
    /// scatters by index and nothing records time. This is the harness
    /// half of the sketch merge-order-invariance story.
    #[test]
    fn artifacts_are_worker_count_invariant() {
        for plan in builtin_plans() {
            let serial = run_plan(&plan, &Scheduler::serial());
            let parallel = run_plan(&plan, &Scheduler::new(4));
            assert_eq!(
                serial.to_canonical_string(),
                parallel.to_canonical_string(),
                "plan {} diverged across worker counts",
                plan.name
            );
            verify_seal(&serial).expect("sealed artifact verifies");
        }
        for plan in crate::plan::builtin_disagg_plans() {
            let serial = run_disagg_plan(&plan, &Scheduler::serial());
            let parallel = run_disagg_plan(&plan, &Scheduler::new(4));
            assert_eq!(
                serial.to_canonical_string(),
                parallel.to_canonical_string(),
                "disagg plan {} diverged across worker counts",
                plan.name
            );
            verify_seal(&serial).expect("sealed disagg artifact verifies");
        }
    }

    /// Structural pins on the committed disaggregation grid: every cell
    /// conserves requests, capacity-0 cells never hit, and warm cells
    /// save tokens — so the golden artifact gates live counters, not
    /// vacuous zeros.
    #[test]
    fn disagg_cells_conserve_and_cache_counters_are_live() {
        let plan = crate::plan::builtin_disagg_plans()
            .into_iter()
            .find(|p| p.name == "disagg_transfer_grid")
            .expect("builtin disagg plan");
        let doc = run_disagg_plan(&plan, &Scheduler::serial());
        let Value::Obj(map) = &doc else {
            panic!("artifact is an object")
        };
        let Some(Value::Arr(cells)) = map.get("cells") else {
            panic!("artifact has cells")
        };
        assert_eq!(cells.len(), plan.cells().len());
        for cell in cells {
            let Value::Obj(c) = cell else {
                panic!("cell is an object")
            };
            assert_eq!(
                c.get("completed"),
                Some(&Value::UInt(plan.requests as u64)),
                "cell lost requests"
            );
            let uint = |k: &str| match c.get(k) {
                Some(Value::UInt(v)) => *v,
                other => panic!("{k} missing or mistyped: {other:?}"),
            };
            if uint("capacity") == 0 {
                assert_eq!(uint("hits"), 0, "capacity-0 cell hit");
                assert_eq!(uint("tokens_saved"), 0, "capacity-0 cell saved tokens");
            } else {
                assert!(uint("hits") > 0, "warm cell never hit");
                assert!(uint("tokens_saved") > 0, "warm cell saved nothing");
            }
            assert!(uint("transfers") > 0, "cell never handed off");
        }
    }

    /// Streaming cells must retain zero per-request samples and record a
    /// bounded sketch error against their exact twin.
    #[test]
    fn streaming_fidelity_cells_record_bounded_error() {
        let plan = builtin_plans()
            .into_iter()
            .find(|p| p.name == "streaming_fidelity")
            .expect("builtin plan");
        let doc = run_plan(&plan, &Scheduler::serial());
        let Value::Obj(map) = &doc else {
            panic!("artifact is an object")
        };
        let Some(Value::Arr(cells)) = map.get("cells") else {
            panic!("artifact has cells")
        };
        assert_eq!(cells.len(), plan.cells().len());
        for cell in cells {
            let Value::Obj(c) = cell else {
                panic!("cell is an object")
            };
            assert_eq!(
                c.get("retained_latency_samples"),
                Some(&Value::UInt(0)),
                "streaming cell retained per-request latencies"
            );
            for tag in ["p50", "p95", "p99"] {
                let (Some(Value::Float(err)), Some(Value::Float(exact))) = (
                    c.get(&format!("sketch_abs_err_{tag}")),
                    c.get(&format!("exact_{tag}_latency_s")),
                ) else {
                    panic!("fidelity fields missing for {tag}")
                };
                assert!(
                    *err <= exact.abs() * 0.25 + 1e-9,
                    "{tag}: sketch error {err} exceeds ε bound on exact {exact}"
                );
            }
        }
    }
}
