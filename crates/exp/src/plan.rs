//! Sweep plans: a declarative grid of engine configurations.
//!
//! A plan is pure data — nothing here runs a simulation. Cell expansion
//! is a fixed-order cartesian product (dispatch-major, then scheduling,
//! then rate), so cell index `i` always names the same configuration and
//! the runner's pool fan-out can scatter results by index without any
//! ordering ambiguity.

use lat_core::pipeline::SchedulingPolicy;
use lat_core::sketch::ReportMode;
use lat_hwsim::decode::KvTransfer;
use lat_hwsim::fleet::DispatchPolicy;
use lat_workloads::prefix::PrefixProfile;

/// A declarative sweep: the cartesian product of the three axes, run on
/// a homogeneous fleet of `shards` shards fed `requests` Poisson
/// arrivals per cell.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Plan name — doubles as the artifact file stem.
    pub name: &'static str,
    /// One-line description rendered in the artifact and table header.
    pub description: &'static str,
    /// Requests per cell.
    pub requests: usize,
    /// Fleet width.
    pub shards: usize,
    /// Dispatch-policy axis (outermost in cell order).
    pub dispatch: Vec<DispatchPolicy>,
    /// Scheduling-policy axis.
    pub scheduling: Vec<SchedulingPolicy>,
    /// Arrival-rate axis, sequences per second (innermost).
    pub rates_seq_s: Vec<f64>,
    /// Report mode the cells run under. `Streaming` cells additionally
    /// run the exact engine and record sketch-vs-exact percentile
    /// deltas, making the artifact a fidelity record.
    pub mode: ReportMode,
}

/// One expanded grid point of a [`SweepPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Position in the plan's fixed expansion order.
    pub index: usize,
    /// Dispatch policy for this cell.
    pub dispatch: DispatchPolicy,
    /// Scheduling policy for this cell.
    pub scheduling: SchedulingPolicy,
    /// Poisson arrival rate for this cell.
    pub rate_seq_s: f64,
}

impl SweepPlan {
    /// Expands the grid in the documented fixed order. Deterministic:
    /// the same plan always yields the same cells at the same indices.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(
            self.dispatch.len() * self.scheduling.len() * self.rates_seq_s.len(),
        );
        for &dispatch in &self.dispatch {
            for &scheduling in &self.scheduling {
                for &rate_seq_s in &self.rates_seq_s {
                    out.push(Cell {
                        index: out.len(),
                        dispatch,
                        scheduling,
                        rate_seq_s,
                    });
                }
            }
        }
        out
    }
}

/// Stable label for a dispatch policy (artifact field value).
pub fn dispatch_label(d: DispatchPolicy) -> &'static str {
    match d {
        DispatchPolicy::RoundRobin => "round-robin",
        DispatchPolicy::JoinShortestQueue => "join-shortest-queue",
        DispatchPolicy::LengthBinned => "length-binned",
    }
}

/// Stable label for a scheduling policy (artifact field value).
pub fn scheduling_label(s: SchedulingPolicy) -> String {
    match s {
        SchedulingPolicy::LengthAware => "length-aware".into(),
        SchedulingPolicy::PadToMax => "pad-to-max".into(),
        SchedulingPolicy::MicroBatch { size } => format!("micro-batch-{size}"),
    }
}

/// A declarative disaggregation sweep: the cartesian product of the
/// KV-interconnect axis (outermost) and the prefix-cache capacity axis
/// (innermost), each cell a split prefill/decode fleet serving the same
/// Poisson trace and prefix assignment.
#[derive(Debug, Clone)]
pub struct DisaggPlan {
    /// Plan name — doubles as the artifact file stem.
    pub name: &'static str,
    /// One-line description rendered in the artifact and table header.
    pub description: &'static str,
    /// Requests per cell.
    pub requests: usize,
    /// Prefill-pool width.
    pub prefill_shards: usize,
    /// Decode-pool width.
    pub decode_shards: usize,
    /// Poisson arrival rate, sequences per second.
    pub rate_seq_s: f64,
    /// KV-interconnect axis: `(stable label, transfer pricing)`.
    pub transfers: Vec<(&'static str, KvTransfer)>,
    /// Prefix-cache capacity axis, in entries (0 = caching disabled).
    pub capacities: Vec<usize>,
    /// Shared-prefix workload profile all cells draw their assignment
    /// from.
    pub prefix: PrefixProfile,
}

/// One expanded grid point of a [`DisaggPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggCell {
    /// Position in the plan's fixed expansion order.
    pub index: usize,
    /// Stable artifact label of the transfer pricing.
    pub transfer_label: &'static str,
    /// KV-transfer pricing for this cell.
    pub transfer: KvTransfer,
    /// Prefix-cache capacity for this cell.
    pub capacity: usize,
}

impl DisaggPlan {
    /// Expands the grid in the documented fixed order (transfer-major).
    /// Deterministic: the same plan always yields the same cells at the
    /// same indices.
    pub fn cells(&self) -> Vec<DisaggCell> {
        let mut out = Vec::with_capacity(self.transfers.len() * self.capacities.len());
        for &(transfer_label, transfer) in &self.transfers {
            for &capacity in &self.capacities {
                out.push(DisaggCell {
                    index: out.len(),
                    transfer_label,
                    transfer,
                    capacity,
                });
            }
        }
        out
    }
}

/// The committed plan set: every plan here has a golden artifact under
/// `crates/exp/expected/` and is regenerated by `analyze --check`.
pub fn builtin_plans() -> Vec<SweepPlan> {
    vec![
        SweepPlan {
            name: "dispatch_grid",
            description: "dispatch × scheduling grid on a healthy 3-shard fleet",
            requests: 400,
            shards: 3,
            dispatch: DispatchPolicy::ALL.to_vec(),
            scheduling: vec![
                SchedulingPolicy::LengthAware,
                SchedulingPolicy::PadToMax,
                SchedulingPolicy::MicroBatch { size: 4 },
            ],
            rates_seq_s: vec![300.0],
            mode: ReportMode::Exact,
        },
        SweepPlan {
            name: "streaming_fidelity",
            description: "streaming-sketch fidelity vs the exact report across arrival rates",
            requests: 600,
            shards: 3,
            dispatch: vec![DispatchPolicy::JoinShortestQueue],
            scheduling: vec![SchedulingPolicy::LengthAware],
            rates_seq_s: vec![150.0, 600.0, 2400.0],
            mode: ReportMode::Streaming,
        },
    ]
}

/// The committed disaggregation plan set — same golden-pack contract as
/// [`builtin_plans`].
pub fn builtin_disagg_plans() -> Vec<DisaggPlan> {
    vec![DisaggPlan {
        name: "disagg_transfer_grid",
        description: "KV-interconnect pricing × prefix-cache capacity on a split 2P+2D fleet",
        requests: 240,
        prefill_shards: 2,
        decode_shards: 2,
        rate_seq_s: 600.0,
        transfers: vec![
            (
                "cheap-copy",
                KvTransfer::Copy {
                    base_s: 1e-5,
                    per_token_s: 1e-8,
                },
            ),
            (
                "costly-copy",
                KvTransfer::Copy {
                    base_s: 5e-3,
                    per_token_s: 1e-5,
                },
            ),
            ("reprefill", KvTransfer::Reprefill),
        ],
        capacities: vec![0, 4],
        prefix: PrefixProfile {
            num_groups: 4,
            prefix_len: 48,
            grouped_fraction: 0.8,
        },
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_expansion_is_fixed_order() {
        let plans = builtin_plans();
        let grid = &plans[0];
        let cells = grid.cells();
        assert_eq!(cells.len(), 9);
        // Dispatch-major: the first scheduling-axis stride shares dispatch.
        assert_eq!(cells[0].dispatch, cells[2].dispatch);
        assert_ne!(cells[0].dispatch, cells[3].dispatch);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Expansion is a pure function of the plan.
        assert_eq!(grid.cells(), cells);
    }

    #[test]
    fn disagg_cell_expansion_is_fixed_order() {
        let plans = builtin_disagg_plans();
        let grid = &plans[0];
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.transfers.len() * grid.capacities.len());
        // Transfer-major: the first capacity-axis stride shares pricing.
        assert_eq!(cells[0].transfer, cells[1].transfer);
        assert_ne!(cells[0].capacity, cells[1].capacity);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        assert_eq!(grid.cells(), cells);
        // Every committed cell must be well-formed: engine validation on
        // both axes plus the prefix profile.
        grid.prefix.validate();
        for &(_, t) in &grid.transfers {
            t.validate();
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(dispatch_label(DispatchPolicy::RoundRobin), "round-robin");
        assert_eq!(
            scheduling_label(SchedulingPolicy::MicroBatch { size: 4 }),
            "micro-batch-4"
        );
    }
}
