//! Figure-table renderer and golden-pack gate for the experiment harness.
//!
//! ```text
//! analyze                      # run every builtin plan, print its table
//! analyze --plan NAME          # restrict to one plan
//! analyze --out DIR            # also write DIR/<plan>.json (pretty canonical)
//! analyze --check DIR          # regenerate and diff against DIR/<plan>.json;
//!                              # exit 1 on the first byte of divergence
//! ```
//!
//! `--check` is the CI contract: artifacts carry no wall-clock values, so
//! a committed golden pack (`crates/exp/expected/`) must reproduce
//! byte-for-byte on any machine at any worker count. A mismatch means an
//! engine's observable behavior changed — regenerate with `--out` only
//! after deciding that change is intended.

use std::path::{Path, PathBuf};

use lat_bench::tables;
use lat_core::pool::Scheduler;
use lat_exp::artifact::verify_seal;
use lat_exp::plan::{builtin_disagg_plans, builtin_plans, DisaggPlan, SweepPlan};
use lat_exp::runner::{run_disagg_plan, run_plan};
use serde::json::{self, Value};

struct Args {
    check_dir: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    only_plan: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        check_dir: None,
        out_dir: None,
        only_plan: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--check" => args.check_dir = Some(PathBuf::from(value_for("--check"))),
            "--out" => args.out_dir = Some(PathBuf::from(value_for("--out"))),
            "--plan" => args.only_plan = Some(value_for("--plan")),
            "--help" | "-h" => {
                println!("usage: analyze [--plan NAME] [--out DIR] [--check DIR]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("analyze: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = parse_args();
    let name_matches = |name: &str| args.only_plan.as_deref().is_none_or(|n| n == name);
    let plans: Vec<SweepPlan> = builtin_plans()
        .into_iter()
        .filter(|p| name_matches(p.name))
        .collect();
    let disagg_plans: Vec<DisaggPlan> = builtin_disagg_plans()
        .into_iter()
        .filter(|p| name_matches(p.name))
        .collect();
    if plans.is_empty() && disagg_plans.is_empty() {
        die("no plan matches --plan filter");
    }
    let pool = Scheduler::from_env();
    let mut failures = 0usize;
    let handle = |name: &str, doc: &Value, failures: &mut usize| {
        if let Some(dir) = &args.out_dir {
            let path = dir.join(format!("{name}.json"));
            std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, doc.to_pretty_string(2)))
                .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
            println!("wrote {}", path.display());
        }
        if let Some(dir) = &args.check_dir {
            if let Err(msg) = check_against(name, doc, dir) {
                eprintln!("analyze: CHECK FAILED for {name}: {msg}");
                *failures += 1;
            } else {
                println!("check ok: {name} matches {}", dir.display());
            }
        }
        println!();
    };
    for plan in &plans {
        let doc = run_plan(plan, &pool);
        verify_seal(&doc)
            .unwrap_or_else(|e| die(&format!("{}: fresh seal invalid: {e}", plan.name)));
        print_table(plan, &doc);
        handle(plan.name, &doc, &mut failures);
    }
    for plan in &disagg_plans {
        let doc = run_disagg_plan(plan, &pool);
        verify_seal(&doc)
            .unwrap_or_else(|e| die(&format!("{}: fresh seal invalid: {e}", plan.name)));
        print_disagg_table(plan, &doc);
        handle(plan.name, &doc, &mut failures);
    }
    if failures > 0 {
        die(&format!(
            "{failures} plan(s) diverged from the golden pack — if intended, \
             regenerate with `analyze --out <dir>`"
        ));
    }
}

/// Compares a freshly generated artifact against the committed golden
/// file, structurally (so pretty whitespace is irrelevant) and then by
/// fingerprint for the error message.
fn check_against(name: &str, fresh: &Value, dir: &Path) -> Result<(), String> {
    let path = dir.join(format!("{name}.json"));
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let golden = json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    verify_seal(&golden).map_err(|e| format!("{} is corrupt: {e}", path.display()))?;
    if golden == *fresh {
        return Ok(());
    }
    let fp = |v: &Value| match v {
        Value::Obj(m) => match m.get("fingerprint") {
            Some(Value::Str(s)) => s.clone(),
            _ => "<unsealed>".into(),
        },
        _ => "<not an object>".into(),
    };
    Err(format!(
        "artifact content diverged (golden {}, regenerated {})",
        fp(&golden),
        fp(fresh)
    ))
}

fn print_disagg_table(plan: &DisaggPlan, doc: &Value) {
    let Value::Obj(map) = doc else { return };
    let Some(Value::Arr(cells)) = map.get("cells") else {
        return;
    };
    println!("{} — {}", plan.name, plan.description);
    let header = [
        "transfer",
        "capacity",
        "goodput (tok/s)",
        "p95 TTFT (ms)",
        "makespan (s)",
        "handoffs",
        "hits",
        "tokens saved",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .filter_map(|c| {
            let Value::Obj(c) = c else { return None };
            let s = |k: &str| match c.get(k) {
                Some(Value::Str(v)) => v.clone(),
                _ => "?".into(),
            };
            let f = |k: &str| match c.get(k) {
                Some(Value::Float(v)) => *v,
                Some(Value::UInt(v)) => *v as f64,
                _ => f64::NAN,
            };
            Some(vec![
                s("transfer"),
                format!("{:.0}", f("capacity")),
                format!("{:.0}", f("goodput_tok_s")),
                format!("{:.2}", f("ttft_p95_s") * 1e3),
                format!("{:.3}", f("makespan_s")),
                format!("{:.0}", f("transfers")),
                format!("{:.0}", f("hits")),
                format!("{:.0}", f("tokens_saved")),
            ])
        })
        .collect();
    println!("{}", tables::render(&header, &rows));
}

fn print_table(plan: &SweepPlan, doc: &Value) {
    let Value::Obj(map) = doc else { return };
    let Some(Value::Arr(cells)) = map.get("cells") else {
        return;
    };
    let streaming = matches!(map.get("mode"), Some(Value::Str(m)) if m == "streaming");
    println!("{} — {}", plan.name, plan.description);
    let mut header = vec![
        "dispatch",
        "scheduling",
        "rate/s",
        "completed",
        "makespan (s)",
        "mean batch",
        "p95 (ms)",
        "peak heap ev.",
    ];
    if streaming {
        header.push("sketch |Δp95| (ms)");
    }
    let rows: Vec<Vec<String>> = cells
        .iter()
        .filter_map(|c| {
            let Value::Obj(c) = c else { return None };
            let s = |k: &str| match c.get(k) {
                Some(Value::Str(v)) => v.clone(),
                _ => "?".into(),
            };
            let f = |k: &str| match c.get(k) {
                Some(Value::Float(v)) => *v,
                Some(Value::UInt(v)) => *v as f64,
                _ => f64::NAN,
            };
            let mut row = vec![
                s("dispatch"),
                s("scheduling"),
                format!("{:.0}", f("rate_seq_s")),
                format!("{:.0}", f("completed")),
                format!("{:.3}", f("makespan_s")),
                format!("{:.2}", f("mean_batch_size")),
                format!("{:.2}", f("p95_latency_s") * 1e3),
                format!("{:.0}", f("peak_heap_events")),
            ];
            if streaming {
                row.push(format!("{:.3}", f("sketch_abs_err_p95") * 1e3));
            }
            Some(row)
        })
        .collect();
    println!("{}", tables::render(&header, &rows));
}
