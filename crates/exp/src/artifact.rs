//! Canonical-JSON artifacts sealed with a stable content fingerprint.
//!
//! The fingerprint is FNV-1a-64 over the canonical serialization of the
//! document *without* its `fingerprint` field, rendered as
//! `fnv1a64:<16 hex digits>`. Canonical JSON (sorted keys, deterministic
//! float formatting, no insignificant whitespace) makes the fingerprint a
//! content address: equal documents fingerprint equal, on every platform.

use serde::json::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content fingerprint of a document body (must not already contain a
/// `fingerprint` field — seal once).
pub fn fingerprint(body: &Value) -> String {
    format!(
        "fnv1a64:{:016x}",
        fnv1a64(body.to_canonical_string().as_bytes())
    )
}

/// Seals a document: computes the fingerprint of `body` and inserts it
/// as the top-level `fingerprint` field.
///
/// # Panics
///
/// Panics if `body` is not an object or is already sealed — both are
/// harness bugs, not data conditions.
pub fn seal(body: Value) -> Value {
    let fp = fingerprint(&body);
    match body {
        Value::Obj(mut map) => {
            assert!(
                map.insert("fingerprint".into(), Value::Str(fp)).is_none(),
                "document already sealed"
            );
            Value::Obj(map)
        }
        _ => panic!("artifact body must be a JSON object"),
    }
}

/// Verifies a sealed document: strips the `fingerprint` field, recomputes
/// it over the rest, and compares.
///
/// # Errors
///
/// Returns a description of the mismatch (missing field, wrong type, or
/// stale fingerprint).
pub fn verify_seal(doc: &Value) -> Result<(), String> {
    let Value::Obj(map) = doc else {
        return Err("artifact is not a JSON object".into());
    };
    let mut body = map.clone();
    let Some(Value::Str(claimed)) = body.remove("fingerprint") else {
        return Err("artifact has no string `fingerprint` field".into());
    };
    let actual = fingerprint(&Value::Obj(body));
    if claimed == actual {
        Ok(())
    } else {
        Err(format!(
            "fingerprint {claimed} does not match content {actual}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_then_verify_round_trips() {
        let body = Value::obj([
            ("plan".to_string(), Value::Str("x".into())),
            ("cells".to_string(), Value::Arr(vec![Value::UInt(1)])),
        ]);
        let sealed = seal(body);
        verify_seal(&sealed).expect("fresh seal verifies");
        // Tampering breaks the seal.
        if let Value::Obj(mut map) = sealed {
            map.insert("cells".into(), Value::Arr(vec![Value::UInt(2)]));
            assert!(verify_seal(&Value::Obj(map)).is_err());
        }
    }

    #[test]
    fn fingerprint_is_whitespace_insensitive() {
        let body = Value::obj([("k".to_string(), Value::Float(0.5))]);
        let pretty = body.to_pretty_string(2);
        let reparsed = serde::json::parse(&pretty).expect("writer output parses");
        assert_eq!(fingerprint(&body), fingerprint(&reparsed));
    }
}
