//! Property-based tests of the tensor substrate's algebraic invariants.

use lat_tensor::quant::{BitWidth, QuantizedMatrix};
use lat_tensor::rng::SplitMix64;
use lat_tensor::{ops, tiled, Matrix};
use proptest::prelude::*;

fn matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..max_r, 1..max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("shape matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax rows are stochastic: non-negative and summing to 1.
    #[test]
    fn softmax_rows_are_stochastic(m in matrix(8, 8)) {
        let p = ops::softmax_rows(&m);
        for i in 0..p.rows() {
            let row = p.row(i);
            prop_assert!(row.iter().all(|&x| x >= 0.0));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {} sums to {}", i, s);
        }
    }

    /// Two-pass softmax (exp then normalize) equals the fused version.
    #[test]
    fn softmax_decomposition_consistent(m in matrix(6, 10)) {
        let fused = ops::softmax_rows(&m);
        let split = ops::normalize_rows(&ops::exp_rows(&m));
        for (a, b) in fused.as_slice().iter().zip(split.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Identity is a two-sided unit for matmul.
    #[test]
    fn identity_is_unit(m in matrix(6, 6)) {
        let left = Matrix::identity(m.rows()).matmul(&m).expect("shapes agree");
        let right = m.matmul(&Matrix::identity(m.cols())).expect("shapes agree");
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    /// `matmul_transposed(a, b)` equals `a · bᵀ`.
    #[test]
    fn matmul_transposed_definition(seed in 0u64..10_000) {
        let mut rng = SplitMix64::new(seed);
        let a = rng.gaussian_matrix(4, 6, 1.0);
        let b = rng.gaussian_matrix(5, 6, 1.0);
        let direct = a.matmul_transposed(&b).expect("shapes agree");
        let via = a.matmul(&b.transposed()).expect("shapes agree");
        let mse = direct.mse(&via).expect("same shape");
        prop_assert!(mse < 1e-6);
    }

    /// Transpose is an involution and distributes over addition.
    #[test]
    fn transpose_algebra(seed in 0u64..10_000) {
        let mut rng = SplitMix64::new(seed ^ 0x5555);
        let a = rng.gaussian_matrix(5, 7, 1.0);
        let b = rng.gaussian_matrix(5, 7, 1.0);
        prop_assert_eq!(a.transposed().transposed(), a.clone());
        let sum_t = a.add(&b).expect("same shape").transposed();
        let t_sum = a.transposed().add(&b.transposed()).expect("same shape");
        prop_assert_eq!(sum_t, t_sum);
    }

    /// Tiled matmul equals naive matmul for every tile size.
    #[test]
    fn tiled_equals_naive(seed in 0u64..10_000, tile in 1usize..20) {
        let mut rng = SplitMix64::new(seed ^ 0xABC);
        let a = rng.gaussian_matrix(7, 11, 1.0);
        let b = rng.gaussian_matrix(11, 5, 1.0);
        let naive = a.matmul(&b).expect("shapes agree");
        let blocked = tiled::matmul_tiled(&a, &b, tile).expect("shapes agree");
        prop_assert!(naive.mse(&blocked).expect("same shape") < 1e-8);
    }

    /// Gathering all rows in order is the identity.
    #[test]
    fn gather_identity(m in matrix(8, 5)) {
        let idx: Vec<usize> = (0..m.rows()).collect();
        prop_assert_eq!(m.gather_rows(&idx), m);
    }

    /// hstack then col_slice recovers both halves.
    #[test]
    fn hstack_slice_roundtrip(seed in 0u64..10_000) {
        let mut rng = SplitMix64::new(seed ^ 0x9999);
        let a = rng.gaussian_matrix(4, 3, 1.0);
        let b = rng.gaussian_matrix(4, 5, 1.0);
        let h = a.hstack(&b).expect("same rows");
        prop_assert_eq!(h.col_slice(0, 3), a);
        prop_assert_eq!(h.col_slice(3, 8), b);
    }

    /// LayerNorm output rows have ~zero mean and ~unit variance with
    /// identity affine parameters (for non-constant rows).
    #[test]
    fn layer_norm_standardizes(seed in 0u64..10_000) {
        let mut rng = SplitMix64::new(seed ^ 0x1111);
        let m = rng.gaussian_matrix(3, 16, 2.0);
        let out = ops::layer_norm(&m, &[1.0; 16], &[0.0; 16], 1e-9);
        for i in 0..out.rows() {
            let row = out.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 16.0;
            prop_assert!(mean.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 1e-2);
        }
    }

    /// Quantize→dequantize→quantize is a fixed point (idempotent on the
    /// quantized lattice).
    #[test]
    fn quantization_idempotent(m in matrix(6, 6), wide in any::<bool>()) {
        let bits = if wide { BitWidth::Eight } else { BitWidth::Four };
        let q1 = QuantizedMatrix::quantize(&m, bits);
        let q2 = QuantizedMatrix::quantize(&q1.dequantize(), bits);
        prop_assert_eq!(q1.levels(), q2.levels());
    }

    /// GELU is monotone non-decreasing right of its stationary point
    /// (x·Φ(x) genuinely dips in the deep negative tail) and bounded
    /// below by a small negative constant everywhere.
    #[test]
    fn gelu_shape(x in -20.0f32..20.0, dx in 0.001f32..5.0) {
        if x >= -0.5 {
            prop_assert!(ops::gelu(x + dx) >= ops::gelu(x) - 1e-4);
        }
        prop_assert!(ops::gelu(x) > -0.2);
        // Asymptotics: identity above, zero below.
        prop_assert!((ops::gelu(20.0) - 20.0).abs() < 1e-3);
        prop_assert!(ops::gelu(-20.0).abs() < 1e-3);
    }

    /// Masked-then-softmaxed padding positions carry zero probability.
    #[test]
    fn padding_gets_zero_probability(seed in 0u64..10_000, valid in 1usize..6) {
        let mut rng = SplitMix64::new(seed ^ 0x2222);
        let m = rng.gaussian_matrix(3, 8, 1.0);
        let p = ops::softmax_rows(&ops::mask_padding(&m, valid, f32::NEG_INFINITY));
        for i in 0..p.rows() {
            for j in valid..8 {
                prop_assert!(p[(i, j)].abs() < 1e-6);
            }
        }
    }
}
