//! Elementwise and row-wise kernels used by the transformer encoder.
//!
//! The kernels mirror the *hardware decomposition* used by the paper rather
//! than a monolithic software convenience API: softmax is available both as
//! the fused [`softmax_rows`] and as the two-pass pair
//! [`exp_rows`] + [`normalize_rows`], because the accelerator's Stage 2.2
//! computes exponents inside the fused attention loop and Stage 2.3 performs
//! the `1/Σ` normalization together with the `S·V` product.

use crate::Matrix;

/// Numerically-stable softmax applied independently to every row.
///
/// Each row is shifted by its maximum before exponentiation so that large
/// attention logits cannot overflow.
///
/// # Example
///
/// ```
/// use lat_tensor::{Matrix, ops};
///
/// let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
/// let p = ops::softmax_rows(&logits);
/// assert!((p.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
/// ```
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        softmax_in_place(out.row_mut(i));
    }
    out
}

/// In-place numerically-stable softmax over a single slice.
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// First half of the hardware softmax: rowwise `exp(x - max(row))`.
///
/// Combined with [`normalize_rows`] this reproduces [`softmax_rows`]; the
/// split exists because Stage 2.2 of the accelerator emits exponentiated
/// scores and Stage 2.3 folds the normalization into the `S·V` MAC loop.
pub fn exp_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |mx, &x| mx.max(x));
        for x in row.iter_mut() {
            *x = (*x - max).exp();
        }
    }
    out
}

/// Second half of the hardware softmax: divide each row by its sum.
///
/// Rows that sum to zero are left unchanged.
pub fn normalize_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let sum: f32 = row.iter().sum();
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
    out
}

/// Row sums as a vector (`Σ_j m[i][j]`), the quantity Stage 2.3 divides by.
pub fn row_sums(m: &Matrix) -> Vec<f32> {
    (0..m.rows()).map(|i| m.row(i).iter().sum()).collect()
}

/// Layer normalization over the last dimension with learnable `gamma`/`beta`.
///
/// `eps` guards the variance; BERT uses `1e-12`, we default to `1e-5` in the
/// model crate which is indistinguishable at f32.
///
/// # Panics
///
/// Panics if `gamma.len()` or `beta.len()` differs from `m.cols()`.
pub fn layer_norm(m: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> Matrix {
    assert_eq!(gamma.len(), m.cols(), "gamma length must equal cols");
    assert_eq!(beta.len(), m.cols(), "beta length must equal cols");
    let mut out = m.clone();
    let n = m.cols() as f32;
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let denom = (var + eps).sqrt();
        for (j, x) in row.iter_mut().enumerate() {
            *x = (*x - mean) / denom * gamma[j] + beta[j];
        }
    }
    out
}

/// GELU activation (tanh approximation, as used by BERT).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Applies [`gelu`] to every element.
pub fn gelu_matrix(m: &Matrix) -> Matrix {
    m.map(gelu)
}

/// ReLU activation.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Sets `m[i][j] = NEG_INFINITY`-equivalent (`mask_value`) wherever
/// `j >= valid_len`, the padding mask applied before softmax.
///
/// The paper's Fig. 4 applies the mask inside the fused loop at the final
/// iteration; this is the standalone reference version.
pub fn mask_padding(m: &Matrix, valid_len: usize, mask_value: f32) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for x in row.iter_mut().skip(valid_len) {
            *x = mask_value;
        }
    }
    out
}

/// Causal (lower-triangular) mask: positions `j > i` receive `mask_value`.
pub fn mask_causal(m: &Matrix, mask_value: f32) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for x in row.iter_mut().skip(i + 1) {
            *x = mask_value;
        }
    }
    out
}

/// Argmax over a slice; returns `None` for an empty slice.
/// Ties resolve to the smallest index (deterministic).
pub fn argmax(xs: &[f32]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Cosine similarity between two equal-length vectors; 0 when either norm
/// vanishes.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f32 = 1e-5;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[-5.0, 0.0, 5.0]]).unwrap();
        let p = softmax_rows(&m);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < TOL, "row {i} sums to {s}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[&[101.0, 102.0, 103.0]]).unwrap();
        let pa = softmax_rows(&a);
        let pb = softmax_rows(&b);
        for j in 0..3 {
            assert!((pa[(0, j)] - pb[(0, j)]).abs() < TOL);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let m = Matrix::from_rows(&[&[1e4, 1e4 - 1.0]]).unwrap();
        let p = softmax_rows(&m);
        assert!(p[(0, 0)].is_finite());
        assert!((p.row(0).iter().sum::<f32>() - 1.0).abs() < TOL);
    }

    #[test]
    fn two_pass_softmax_equals_fused() {
        let m = Matrix::from_fn(4, 6, |i, j| ((i * 6 + j) as f32 * 0.37).sin() * 3.0);
        let fused = softmax_rows(&m);
        let two_pass = normalize_rows(&exp_rows(&m));
        for (a, b) in fused.as_slice().iter().zip(two_pass.as_slice()) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn row_sums_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(row_sums(&m), vec![3.0, 7.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let out = layer_norm(&m, &g, &b, 1e-9);
        let mean: f32 = out.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = out
            .row(0)
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_gamma_beta_affine() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let out = layer_norm(&m, &[2.0; 4], &[1.0; 4], 1e-9);
        let base = layer_norm(&m, &[1.0; 4], &[0.0; 4], 1e-9);
        for j in 0..4 {
            assert!((out[(0, j)] - (2.0 * base[(0, j)] + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn gelu_known_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // asymptotics
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.5), 3.5);
    }

    #[test]
    fn mask_padding_kills_tail() {
        let m = Matrix::filled(2, 4, 1.0);
        let out = mask_padding(&m, 2, f32::NEG_INFINITY);
        assert_eq!(out[(0, 1)], 1.0);
        assert_eq!(out[(0, 2)], f32::NEG_INFINITY);
        assert_eq!(out[(1, 3)], f32::NEG_INFINITY);
    }

    #[test]
    fn masked_softmax_gives_zero_prob_to_padding() {
        let m = Matrix::filled(1, 4, 1.0);
        let p = softmax_rows(&mask_padding(&m, 2, f32::NEG_INFINITY));
        assert!((p[(0, 0)] - 0.5).abs() < TOL);
        assert!(p[(0, 2)].abs() < TOL);
        assert!(p[(0, 3)].abs() < TOL);
    }

    #[test]
    fn mask_causal_is_lower_triangular() {
        let m = Matrix::filled(3, 3, 1.0);
        let out = mask_causal(&m, f32::NEG_INFINITY);
        assert_eq!(out[(0, 1)], f32::NEG_INFINITY);
        assert_eq!(out[(1, 1)], 1.0);
        assert_eq!(out[(2, 0)], 1.0);
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[3.0]), Some(0));
        assert_eq!(argmax(&[1.0, 5.0, 2.0]), Some(1));
        // Tie resolves to the first occurrence.
        assert_eq!(argmax(&[5.0, 5.0]), Some(0));
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!(cosine_similarity(&a, &a) > 0.9999);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert!((cosine_similarity(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn softmax_empty_row_is_noop() {
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
    }
}
