//! Deterministic pseudo-random generation for tests, examples and workloads.
//!
//! A small, dependency-free SplitMix64 generator. Every experiment in the
//! repository is seeded through this module so each figure/table harness is
//! exactly reproducible run-to-run.

use crate::Matrix;

/// SplitMix64 pseudo-random generator.
///
/// Not cryptographic; chosen because it is tiny, fast, and has no weak
/// low-bit structure for the uses here (sampling test tensors and sequence
/// lengths).
///
/// # Example
///
/// ```
/// use lat_tensor::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "next_range({lo}, {hi})");
        lo + self.next_below(hi - lo + 1)
    }

    /// Standard-normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f32 {
        // Avoid ln(0).
        let u1 = (self.next_f64().max(1e-12)) as f32;
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// A `rows × cols` matrix of i.i.d. `N(0, std²)` entries.
    pub fn gaussian_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.next_gaussian() * std)
    }

    /// A `rows × cols` matrix of uniform entries in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| lo + self.next_f32() * (hi - lo))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices({n}, {k})");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Derives an independent child generator (for parallel or per-component
    /// streams that must not correlate).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_range_inclusive_bounds() {
        let mut r = SplitMix64::new(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let x = r.next_range(2, 5);
            assert!((2..=5).contains(&x));
            saw_lo |= x == 2;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut r = SplitMix64::new(5);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(6);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SplitMix64::new(8);
        let idx = r.sample_indices(30, 10);
        assert_eq!(idx.len(), 10);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gaussian_matrix_shape_and_scale() {
        let mut r = SplitMix64::new(10);
        let m = r.gaussian_matrix(10, 20, 0.5);
        assert_eq!(m.shape(), (10, 20));
        let var: f32 = m.as_slice().iter().map(|x| x * x).sum::<f32>() / m.len() as f32;
        assert!((var - 0.25).abs() < 0.05, "var {var}");
    }
}
