//! Small statistics helpers shared by the evaluation harnesses
//! (summaries, percentiles, histograms for printed reports).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Summary`] statistics; `None` for an empty slice.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    // NaN must poison the whole summary uniformly. `f64::min`/`max` silently
    // ignore NaN, which used to yield self-contradictory summaries (NaN
    // mean/std beside finite min/max); a `total_cmp` fold keeps min/max
    // NaN-free only when the data is.
    let (min, max) = if xs.iter().any(|x| x.is_nan()) {
        (f64::NAN, f64::NAN)
    } else {
        xs.iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (
                    if x.total_cmp(&lo) == std::cmp::Ordering::Less {
                        x
                    } else {
                        lo
                    },
                    if x.total_cmp(&hi) == std::cmp::Ordering::Greater {
                        x
                    } else {
                        hi
                    },
                )
            })
    };
    Some(Summary {
        count: xs.len(),
        mean,
        std: var.sqrt(),
        min,
        max,
    })
}

/// `p`-th percentile (0.0–1.0) by nearest-rank on a copy of the data;
/// `None` for an empty slice. NaN-bearing input never panics: `total_cmp`
/// sorts NaNs after `+inf`, so they only surface at the top percentiles.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(rank(&sorted, p))
}

/// Several percentiles from a single sort — the report builders ask for
/// p50/p95/p99 (and TTFT/ITL triples) of the same sample, and re-sorting
/// per call dominated report construction. Each returned value is
/// bit-identical to `percentile(xs, p)` for the corresponding `p`
/// (same sort, same nearest-rank arithmetic); `None` for an empty slice.
///
/// # Panics
///
/// Panics if any `p` is outside `[0, 1]`.
pub fn percentiles(xs: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    for &p in ps {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
    }
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(ps.iter().map(|&p| rank(&sorted, p)).collect())
}

/// Nearest-rank lookup in already-sorted data (shared by [`percentile`]
/// and [`percentiles`] so the two can never drift).
fn rank(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range clamp to the edge buckets.
///
/// # Panics
///
/// Panics if `bins == 0`, `lo >= hi`, or the data contains NaN (previously
/// NaN was silently counted in bin 0 via `NaN.max(0.0)`).
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(lo < hi, "empty histogram range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        assert!(!x.is_nan(), "no NaNs in histogram data");
        let idx = ((x - lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
}

/// Renders a histogram as a one-line-per-bin ASCII bar chart.
pub fn render_histogram(counts: &[usize], lo: f64, hi: f64, width: usize) -> String {
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let bin_width = (hi - lo) / counts.len().max(1) as f64;
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let bar = "#".repeat(c * width / max);
        out.push_str(&format!(
            "[{:>8.1}, {:>8.1}) {:>6} |{}\n",
            lo + i as f64 * bin_width,
            lo + (i + 1) as f64 * bin_width,
            c,
            bar
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentile_nan_input_does_not_panic() {
        // Regression: the comparator used to be partial_cmp().expect(),
        // which panicked the whole report path on a single NaN sample.
        // total_cmp sorts NaNs after +inf, so low/mid percentiles of a
        // mostly-finite sample stay finite and p100 surfaces the NaN.
        let xs = [2.0, f64::NAN, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert!(percentile(&xs, 1.0).unwrap().is_nan());
        assert!(percentile(&[f64::NAN], 0.5).unwrap().is_nan());
    }

    #[test]
    fn summarize_nan_poisons_uniformly() {
        // Regression: min/max used f64::min/max, which skip NaN — a NaN
        // sample produced NaN mean/std beside finite min/max. All four
        // moments must now agree that the data is poisoned.
        let s = summarize(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert!(s.mean.is_nan());
        assert!(s.std.is_nan());
        assert!(s.min.is_nan(), "min must surface NaN like mean does");
        assert!(s.max.is_nan(), "max must surface NaN like mean does");
        // And a clean sample stays clean, signed zeros ordered by total_cmp.
        let s = summarize(&[-0.0, 0.0, 2.0]).unwrap();
        assert_eq!(s.min.to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn percentiles_match_percentile_bit_for_bit() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0, 2.5, 4.5, 0.5];
        let ps = [0.0, 0.25, 0.5, 0.95, 0.99, 1.0];
        let batch = percentiles(&xs, &ps).unwrap();
        for (&p, &got) in ps.iter().zip(&batch) {
            assert_eq!(
                got.to_bits(),
                percentile(&xs, p).unwrap().to_bits(),
                "batch percentile p={p} drifted from the single-p path"
            );
        }
        assert_eq!(percentiles(&[], &ps), None);
        assert_eq!(percentiles(&xs, &[]), Some(Vec::new()));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn percentiles_range_checked() {
        let _ = percentiles(&[1.0], &[0.5, 1.5]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_range_checked() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [0.5, 1.5, 2.5, -10.0, 10.0];
        let h = histogram(&xs, 0.0, 3.0, 3);
        assert_eq!(h, vec![2, 1, 2]); // -10 clamps left, 10 clamps right
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "no NaNs in histogram data")]
    fn histogram_nan_panics() {
        // NaN used to clamp into bin 0, silently corrupting the counts.
        let _ = histogram(&[0.5, f64::NAN], 0.0, 1.0, 2);
    }

    #[test]
    fn render_histogram_shape() {
        let h = histogram(&[0.1, 0.1, 0.9], 0.0, 1.0, 2);
        let s = render_histogram(&h, 0.0, 1.0, 20);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }
}
