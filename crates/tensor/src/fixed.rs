//! 8-bit fixed-point arithmetic mirroring the accelerator datapath.
//!
//! The paper's accelerator (§5.2) runs the main datapath at 8-bit fixed
//! point: one Alveo DSP slice performs one 8-bit multiply-accumulate per
//! cycle. This module provides a `Q`-format scalar type [`Fx8`] with an
//! `i32` accumulator, which is how the hardware keeps partial sums exact
//! inside a dot product before re-quantizing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An 8-bit fixed-point value with a runtime fractional-bit count.
///
/// The value represented is `raw / 2^frac_bits`, with `raw ∈ [-128, 127]`.
///
/// # Example
///
/// ```
/// use lat_tensor::fixed::Fx8;
///
/// let x = Fx8::from_f32(0.5, 6);   // Q1.6
/// assert_eq!(x.raw(), 32);
/// assert!((x.to_f32() - 0.5).abs() < 1.0 / 64.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fx8 {
    raw: i8,
    frac_bits: u8,
}

impl Fx8 {
    /// Quantizes an `f32` into Q-format with `frac_bits` fractional bits
    /// (round-to-nearest, saturating at the representable range).
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 7` (an 8-bit signed value has at most 7
    /// fractional bits alongside its sign).
    pub fn from_f32(x: f32, frac_bits: u8) -> Self {
        assert!(frac_bits <= 7, "frac_bits must be <= 7, got {frac_bits}");
        let scaled = (x * (1u32 << frac_bits) as f32).round();
        let raw = scaled.clamp(i8::MIN as f32, i8::MAX as f32) as i8;
        Self { raw, frac_bits }
    }

    /// Builds a value from its raw integer representation.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 7`.
    pub fn from_raw(raw: i8, frac_bits: u8) -> Self {
        assert!(frac_bits <= 7, "frac_bits must be <= 7, got {frac_bits}");
        Self { raw, frac_bits }
    }

    /// The raw 8-bit payload.
    pub fn raw(self) -> i8 {
        self.raw
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u8 {
        self.frac_bits
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        self.raw as f32 / (1u32 << self.frac_bits) as f32
    }

    /// Quantization step (the smallest representable increment).
    pub fn step(self) -> f32 {
        1.0 / (1u32 << self.frac_bits) as f32
    }

    /// Saturating fixed-point addition; operands must share a format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn saturating_add(self, rhs: Fx8) -> Fx8 {
        assert_eq!(self.frac_bits, rhs.frac_bits, "Fx8 format mismatch");
        Fx8 {
            raw: self.raw.saturating_add(rhs.raw),
            frac_bits: self.frac_bits,
        }
    }
}

impl fmt::Display for Fx8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(Q{}.{})",
            self.to_f32(),
            7 - self.frac_bits,
            self.frac_bits
        )
    }
}

/// Exact dot product of two 8-bit fixed-point vectors with an `i32`
/// accumulator, returning the result as `f32`.
///
/// This models one DSP MAC chain: products of two Q-format bytes are 16-bit,
/// and the 32-bit accumulator cannot overflow for realistic vector lengths
/// (`n · 127 · 127 < 2^31` up to n ≈ 133 000).
///
/// # Panics
///
/// Panics if lengths or formats differ.
pub fn dot_fx8(a: &[Fx8], b: &[Fx8]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_fx8 length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let fa = a[0].frac_bits();
    let fb = b[0].frac_bits();
    let mut acc: i32 = 0;
    for (&x, &y) in a.iter().zip(b) {
        assert_eq!(x.frac_bits(), fa, "mixed formats in lhs");
        assert_eq!(y.frac_bits(), fb, "mixed formats in rhs");
        acc += x.raw() as i32 * y.raw() as i32;
    }
    acc as f32 / (1u64 << (fa as u32 + fb as u32)) as f32
}

/// Quantizes a float slice to a shared Q-format chosen from its max-abs
/// value, returning the values and the chosen fractional bit count.
///
/// The format is chosen as the largest `frac_bits` such that the max-abs
/// value still fits, which is what a per-tensor calibration pass would do.
pub fn quantize_slice(xs: &[f32]) -> (Vec<Fx8>, u8) {
    let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let mut frac_bits = 7u8;
    while frac_bits > 0 {
        let max_repr = 127.0 / (1u32 << frac_bits) as f32;
        if max_abs <= max_repr {
            break;
        }
        frac_bits -= 1;
    }
    let vals = xs.iter().map(|&x| Fx8::from_f32(x, frac_bits)).collect();
    (vals, frac_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_half_step() {
        for frac in 0..=7u8 {
            let step = 1.0 / (1u32 << frac) as f32;
            for &x in &[0.0f32, 0.3, -0.9, 0.125, -1.0] {
                let max_repr = 127.0 * step;
                if x.abs() > max_repr {
                    continue;
                }
                let q = Fx8::from_f32(x, frac);
                assert!(
                    (q.to_f32() - x).abs() <= step / 2.0 + 1e-7,
                    "frac={frac} x={x} got {}",
                    q.to_f32()
                );
            }
        }
    }

    #[test]
    fn saturation_clamps() {
        let q = Fx8::from_f32(100.0, 6);
        assert_eq!(q.raw(), 127);
        let q = Fx8::from_f32(-100.0, 6);
        assert_eq!(q.raw(), -128);
    }

    #[test]
    fn saturating_add_caps_at_extremes() {
        let a = Fx8::from_raw(120, 4);
        let b = Fx8::from_raw(50, 4);
        assert_eq!(a.saturating_add(b).raw(), 127);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn add_format_mismatch_panics() {
        let a = Fx8::from_raw(1, 3);
        let b = Fx8::from_raw(1, 4);
        let _ = a.saturating_add(b);
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn invalid_frac_bits_panics() {
        let _ = Fx8::from_f32(0.0, 8);
    }

    #[test]
    fn dot_fx8_matches_float_within_quant_error() {
        let xs: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin() * 0.9).collect();
        let ys: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.53).cos() * 0.9).collect();
        let (qx, _) = quantize_slice(&xs);
        let (qy, _) = quantize_slice(&ys);
        let exact: f32 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let fixed = dot_fx8(&qx, &qy);
        // 64 products each with quantization error ≤ step: loose but honest bound.
        assert!((exact - fixed).abs() < 0.2, "exact={exact} fixed={fixed}");
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot_fx8(&[], &[]), 0.0);
    }

    #[test]
    fn quantize_slice_picks_fitting_format() {
        let (_, frac) = quantize_slice(&[0.4, -0.2]);
        assert_eq!(frac, 7); // max-abs 0.4 < 127/128
        let (_, frac) = quantize_slice(&[3.0]);
        assert_eq!(frac, 5); // 127/32 = 3.97 fits, 127/64 = 1.98 does not
    }

    #[test]
    fn display_shows_format() {
        let q = Fx8::from_f32(0.5, 6);
        assert!(q.to_string().contains("Q1.6"));
    }
}
