//! Look-up-table integer multiplier (paper §3.2, Fig. 2a "Bits Selector").
//!
//! The At-Sel hardware multiplies two low-bit integers by indexing a
//! pre-computed product table instead of occupying a DSP slice: for 4-bit
//! signed operands the table has `16 × 16 = 256` entries. This module models
//! that unit exactly so the algorithm layer and the hardware simulator agree
//! bit-for-bit with plain integer multiplication.

use crate::quant::{BitWidth, QuantizedMatrix};
use crate::ShapeError;

/// A pre-computed signed product table for a given operand bit-width.
///
/// # Example
///
/// ```
/// use lat_tensor::lut::ProductLut;
/// use lat_tensor::quant::BitWidth;
///
/// let lut = ProductLut::new(BitWidth::Four);
/// assert_eq!(lut.multiply(-7, 7), -49);
/// assert_eq!(lut.entries(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct ProductLut {
    bits: BitWidth,
    /// Table indexed by `(a + offset) * side + (b + offset)`.
    table: Vec<i32>,
    offset: i32,
    side: usize,
}

impl ProductLut {
    /// Builds the product table for `bits`-wide signed operands.
    ///
    /// For 1-bit operands the domain is `{-1, +1}` encoded over a 2-wide
    /// table; 4-bit uses 16×16 = 256 entries; 8-bit uses 256×256 entries
    /// (the hardware would not build the 8-bit table — it exists here for
    /// testing symmetry).
    pub fn new(bits: BitWidth) -> Self {
        let (lo, hi) = match bits {
            BitWidth::One => (-1i32, 1i32),
            BitWidth::Four => (-8, 7),
            BitWidth::Eight => (-128, 127),
        };
        let side = (hi - lo + 1) as usize;
        let mut table = vec![0i32; side * side];
        for a in lo..=hi {
            for b in lo..=hi {
                table[((a - lo) as usize) * side + (b - lo) as usize] = a * b;
            }
        }
        Self {
            bits,
            table,
            offset: -lo,
            side,
        }
    }

    /// The operand bit-width of this table.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Total number of table entries (256 for the paper's 4-bit case).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Looks up `a * b`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is outside the representable range of the
    /// table's bit-width.
    pub fn multiply(&self, a: i32, b: i32) -> i32 {
        let ia = a + self.offset;
        let ib = b + self.offset;
        assert!(
            ia >= 0 && (ia as usize) < self.side && ib >= 0 && (ib as usize) < self.side,
            "operand out of {} range: {a} * {b}",
            self.bits
        );
        self.table[ia as usize * self.side + ib as usize]
    }

    /// Dot product of two level slices through the LUT.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or any level is out of
    /// range for the table.
    pub fn dot(&self, a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len(), "lut dot length mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.multiply(x as i32, y as i32))
            .sum()
    }

    /// Approximate score matrix `q · kᵀ` computed entirely through the LUT —
    /// the operation the At-Sel unit performs for candidate pre-selection.
    ///
    /// Returns a row-major `q.rows() × k.rows()` buffer of integer scores.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the inner dimensions differ.
    ///
    /// # Panics
    ///
    /// Panics if the operands were quantized at a wider bit-width than this
    /// table supports.
    pub fn score_matrix(
        &self,
        q: &QuantizedMatrix,
        k: &QuantizedMatrix,
    ) -> Result<Vec<i32>, ShapeError> {
        if q.cols() != k.cols() {
            return Err(ShapeError::new(
                "lut score_matrix",
                (q.rows(), q.cols()),
                (k.rows(), k.cols()),
            ));
        }
        let mut out = vec![0i32; q.rows() * k.rows()];
        for i in 0..q.rows() {
            let qi = q.level_row(i);
            for j in 0..k.rows() {
                out[i * k.rows() + j] = self.dot(qi, k.level_row(j));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn four_bit_table_has_256_entries() {
        let lut = ProductLut::new(BitWidth::Four);
        assert_eq!(lut.entries(), 256);
    }

    #[test]
    fn lut_matches_integer_multiply_exhaustive_4bit() {
        let lut = ProductLut::new(BitWidth::Four);
        for a in -8..=7 {
            for b in -8..=7 {
                assert_eq!(lut.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn lut_matches_integer_multiply_1bit() {
        let lut = ProductLut::new(BitWidth::One);
        for a in [-1, 1] {
            for b in [-1, 1] {
                assert_eq!(lut.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_operand_panics() {
        let lut = ProductLut::new(BitWidth::Four);
        let _ = lut.multiply(8, 0);
    }

    #[test]
    fn dot_matches_manual() {
        let lut = ProductLut::new(BitWidth::Four);
        assert_eq!(lut.dot(&[1, -2, 3], &[4, 5, -6]), 4 - 10 - 18);
    }

    #[test]
    fn score_matrix_matches_reference_i32_matmul() {
        let q_m = Matrix::from_fn(3, 8, |i, j| ((i * 8 + j) as f32 * 0.9).sin());
        let k_m = Matrix::from_fn(6, 8, |i, j| ((i * 8 + j) as f32 * 0.7).cos());
        let q = QuantizedMatrix::quantize(&q_m, BitWidth::Four);
        let k = QuantizedMatrix::quantize(&k_m, BitWidth::Four);
        let lut = ProductLut::new(BitWidth::Four);
        let via_lut = lut.score_matrix(&q, &k).unwrap();
        let reference = q.matmul_transposed_i32(&k).unwrap();
        assert_eq!(via_lut, reference);
    }

    #[test]
    fn score_matrix_shape_error() {
        let a = QuantizedMatrix::quantize(&Matrix::zeros(2, 3), BitWidth::Four);
        let b = QuantizedMatrix::quantize(&Matrix::zeros(2, 5), BitWidth::Four);
        let lut = ProductLut::new(BitWidth::Four);
        assert!(lut.score_matrix(&a, &b).is_err());
    }
}
