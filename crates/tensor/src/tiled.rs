//! Tiled (blocked) matrix multiplication — the software mirror of the
//! accelerator's tiled PE array (Fig. 2(a) "Tiled PEs").
//!
//! The hardware MM unit processes `tile × tile` blocks held in on-chip
//! buffers; this module provides the equivalent blocked loop nest, which
//! must be numerically identical to the naive [`crate::Matrix::matmul`]
//! (same additions, different order — exactly equal for the per-tile
//! accumulation order used here), plus the tile-traffic accounting the
//! hardware model charges.

use crate::{Matrix, ShapeError};

/// Blocked matrix product `a · b` with square tiles of side `tile`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the inner dimensions differ.
///
/// # Panics
///
/// Panics if `tile == 0`.
///
/// # Example
///
/// ```
/// use lat_tensor::{Matrix, tiled};
///
/// # fn main() -> Result<(), lat_tensor::ShapeError> {
/// let a = Matrix::from_fn(5, 7, |i, j| (i + j) as f32);
/// let b = Matrix::from_fn(7, 3, |i, j| (i * j) as f32);
/// let exact = a.matmul(&b)?;
/// let blocked = tiled::matmul_tiled(&a, &b, 4)?;
/// assert!(exact.mse(&blocked)? < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn matmul_tiled(a: &Matrix, b: &Matrix, tile: usize) -> Result<Matrix, ShapeError> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_tiled_into(a, b, tile, &mut out)?;
    Ok(out)
}

/// [`matmul_tiled`] into a caller-owned output matrix, so repeated
/// products of one shape (the accelerator model's per-layer sweeps) reuse
/// a single allocation. `out` is reshaped if needed (allocating once) and
/// fully overwritten.
///
/// # Errors
///
/// Returns [`ShapeError`] if the inner dimensions differ.
///
/// # Panics
///
/// Panics if `tile == 0`.
pub fn matmul_tiled_into(
    a: &Matrix,
    b: &Matrix,
    tile: usize,
    out: &mut Matrix,
) -> Result<(), ShapeError> {
    assert!(tile > 0, "tile size must be >= 1");
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_tiled", a.shape(), b.shape()));
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if out.shape() != (m, n) {
        *out = Matrix::zeros(m, n);
    } else {
        for i in 0..m {
            out.row_mut(i).fill(0.0);
        }
    }
    // Same finite gate as `Matrix::matmul`: zero entries of `a` may only
    // skip fully-finite rows of `b`, so 0·inf / 0·NaN propagate here too
    // and the tiled kernel stays exactly equal to the naive one on every
    // input, not just finite ones.
    let skippable: Vec<bool> = (0..k)
        .map(|kk| b.row(kk).iter().all(|v| v.is_finite()))
        .collect();
    for i0 in (0..m).step_by(tile) {
        for k0 in (0..k).step_by(tile) {
            for j0 in (0..n).step_by(tile) {
                let i1 = (i0 + tile).min(m);
                let k1 = (k0 + tile).min(k);
                let j1 = (j0 + tile).min(n);
                for i in i0..i1 {
                    let arow = a.row(i);
                    for kk in k0..k1 {
                        let av = arow[kk];
                        if av == 0.0 && skippable[kk] {
                            continue;
                        }
                        // Row-slice AXPY over the tile instead of per-
                        // element `Index` ops (which bounds-check each
                        // access); accumulation order is unchanged.
                        let brow = &b.row(kk)[j0..j1];
                        let orow = &mut out.row_mut(i)[j0..j1];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Number of `tile × tile` block loads from each operand a blocked matmul
/// performs, assuming no inter-block reuse beyond the current block row/
/// column: `(A_blocks, B_blocks, C_blocks)`.
pub fn tile_traffic(m: usize, k: usize, n: usize, tile: usize) -> (u64, u64, u64) {
    assert!(tile > 0, "tile size must be >= 1");
    let mb = m.div_ceil(tile) as u64;
    let kb = k.div_ceil(tile) as u64;
    let nb = n.div_ceil(tile) as u64;
    // A blocks are re-read for every block-column of B; B blocks for every
    // block-row of A; C blocks written once per k-block pass.
    (mb * kb * nb, mb * kb * nb, mb * nb)
}

/// On-chip buffer bytes needed to hold one tile of A, B and C at
/// `bytes_per_elem` precision (double-buffered).
pub fn tile_buffer_bytes(tile: usize, bytes_per_elem: usize) -> usize {
    2 * 3 * tile * tile * bytes_per_elem
}

/// Bytes of off-chip traffic per useful MAC for a blocked matmul — the
/// inverse arithmetic intensity the CTC analysis uses. Larger tiles mean
/// fewer bytes per MAC (better reuse), which is the reason the design
/// wants big on-chip buffers (§4: "with more on-chip memory size, we can
/// achieve a better computation to communication (CTC) ratio").
pub fn bytes_per_mac(m: usize, k: usize, n: usize, tile: usize, bytes_per_elem: usize) -> f64 {
    let (a_blk, b_blk, c_blk) = tile_traffic(m, k, n, tile);
    let block_bytes = (tile * tile * bytes_per_elem) as u64;
    let total_bytes = (a_blk + b_blk + c_blk) * block_bytes;
    let macs = (m * k * n) as u64;
    total_bytes as f64 / macs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn tiled_matches_naive_various_tiles() {
        let mut rng = SplitMix64::new(71);
        let a = rng.gaussian_matrix(13, 17, 1.0);
        let b = rng.gaussian_matrix(17, 9, 1.0);
        let exact = a.matmul(&b).unwrap();
        for tile in [1usize, 2, 4, 8, 16, 32] {
            let blocked = matmul_tiled(&a, &b, tile).unwrap();
            let mse = exact.mse(&blocked).unwrap();
            assert!(mse < 1e-9, "tile {tile}: mse {mse}");
        }
    }

    #[test]
    fn tiled_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matmul_tiled(&a, &b, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = matmul_tiled(&a, &a, 0);
    }

    #[test]
    fn traffic_counts_blocks() {
        // 4x4 · 4x4 with tile 2: 2 blocks per dim ⇒ A/B read 2·2·2 = 8
        // blocks, C written 2·2 = 4.
        assert_eq!(tile_traffic(4, 4, 4, 2), (8, 8, 4));
        // Non-dividing tile rounds up.
        assert_eq!(tile_traffic(5, 5, 5, 4), (8, 8, 4));
    }

    #[test]
    fn larger_tiles_reduce_bytes_per_mac() {
        let small = bytes_per_mac(256, 256, 256, 8, 1);
        let large = bytes_per_mac(256, 256, 256, 64, 1);
        assert!(large < small, "large-tile {large} !< small-tile {small}");
    }

    #[test]
    fn buffer_bytes_formula() {
        // Double-buffered A, B, C tiles.
        assert_eq!(tile_buffer_bytes(64, 1), 2 * 3 * 64 * 64);
    }

    #[test]
    fn u280_tile_fits_on_chip() {
        // A 256-wide 8-bit tile set uses well under 35 MB.
        let bytes = tile_buffer_bytes(256, 1);
        assert!(bytes < 35 * 1024 * 1024);
    }
}
