//! Ultra-low-bit quantization (paper §3.2).
//!
//! The sparse-attention pre-selection step quantizes full-precision `Q` and
//! `K` into a low-precision integer representation:
//!
//! ```text
//! x' = round( (2^(b-1) - 1) / |M| · x )        (affine symmetric, b ≥ 2)
//! x' = sign(x) ∈ {-1, +1}                      (1-bit)
//! ```
//!
//! where `M` is the max-abs scaling factor of the tensor. Because both
//! rounding-to-scale and the exponential inside softmax are monotonically
//! non-decreasing, the quantized score matrix `Q'·K'ᵀ` approximately
//! preserves the *rank order* of the exact attention scores — which is all
//! top-k pre-selection needs.

use crate::{Matrix, ShapeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Supported quantization bit-widths for the pre-selection path.
///
/// The paper evaluates 1-bit (sign) pre-selection in §5.1 and illustrates
/// 4-bit in Fig. 3; the main accelerator datapath runs at 8 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitWidth {
    /// Sign quantization: `x' = +1` if `x >= 0` else `-1`.
    One,
    /// 4-bit symmetric affine quantization (levels −7..=7).
    Four,
    /// 8-bit symmetric affine quantization (levels −127..=127).
    Eight,
}

impl BitWidth {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            BitWidth::One => 1,
            BitWidth::Four => 4,
            BitWidth::Eight => 8,
        }
    }

    /// Largest representable magnitude, `2^(b-1) - 1` (1 for the sign case).
    pub fn max_level(self) -> i32 {
        match self {
            BitWidth::One => 1,
            BitWidth::Four => 7,
            BitWidth::Eight => 127,
        }
    }

    /// All supported widths, narrowest first.
    pub fn all() -> [BitWidth; 3] {
        [BitWidth::One, BitWidth::Four, BitWidth::Eight]
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// A quantized matrix: `i8` levels plus the scale that maps levels back to
/// real values (`x ≈ level * scale`).
///
/// # Example
///
/// ```
/// use lat_tensor::{Matrix, quant::{QuantizedMatrix, BitWidth}};
///
/// let m = Matrix::from_rows(&[&[0.77, -0.5], &[0.1, 0.0]]).unwrap();
/// let q = QuantizedMatrix::quantize(&m, BitWidth::Four);
/// let back = q.dequantize();
/// assert!((back[(0, 0)] - 0.77).abs() < 0.77 / 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    levels: Vec<i8>,
    scale: f32,
    bits: BitWidth,
}

impl QuantizedMatrix {
    /// Quantizes `m` at the given bit-width using the max-abs scaling factor
    /// of the whole tensor (the paper's `M`).
    ///
    /// A zero tensor quantizes to all-zero levels with scale 0 (1-bit maps
    /// zeros to +1, matching `sign(0) = +1`).
    pub fn quantize(m: &Matrix, bits: BitWidth) -> Self {
        let max_abs = m.max_abs();
        match bits {
            BitWidth::One => {
                let levels = m
                    .as_slice()
                    .iter()
                    .map(|&x| if x >= 0.0 { 1i8 } else { -1i8 })
                    .collect();
                Self {
                    rows: m.rows(),
                    cols: m.cols(),
                    levels,
                    // Scale such that dequantized magnitudes sit at the RMS-ish
                    // level; for ranking only the sign pattern matters.
                    scale: if max_abs > 0.0 { max_abs } else { 0.0 },
                    bits,
                }
            }
            _ => {
                let q = bits.max_level() as f32;
                let scale = if max_abs > 0.0 { max_abs / q } else { 0.0 };
                let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
                let levels = m
                    .as_slice()
                    .iter()
                    .map(|&x| {
                        let l = (x * inv).round();
                        l.clamp(-q, q) as i8
                    })
                    .collect();
                Self {
                    rows: m.rows(),
                    cols: m.cols(),
                    levels,
                    scale,
                    bits,
                }
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The bit-width this matrix was quantized at.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// The level→value scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Borrow the raw levels (row-major).
    pub fn levels(&self) -> &[i8] {
        &self.levels
    }

    /// Borrow row `i` of levels.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn level_row(&self, i: usize) -> &[i8] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.levels[i * self.cols..(i + 1) * self.cols]
    }

    /// Maps levels back to approximate real values.
    pub fn dequantize(&self) -> Matrix {
        let data = self.levels.iter().map(|&l| l as f32 * self.scale).collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("level buffer matches shape")
    }

    /// Integer score matrix `self · rhsᵀ` computed exactly in `i32`.
    ///
    /// This is the reference implementation the LUT-based hardware multiplier
    /// ([`crate::lut::ProductLut`]) must agree with bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the inner dimensions differ.
    pub fn matmul_transposed_i32(&self, rhs: &QuantizedMatrix) -> Result<Vec<i32>, ShapeError> {
        let mut out = Vec::new();
        self.matmul_transposed_i32_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul_transposed_i32`] into a caller-owned buffer, so hot
    /// loops (per-query scoring sweeps) can reuse one allocation instead
    /// of allocating a fresh score matrix per call. The buffer is resized
    /// to `self.rows() * rhs.rows()` and fully overwritten.
    ///
    /// The inner dot is unrolled four wide; `i32` addition is associative,
    /// so the result is bit-identical to the scalar reference whatever the
    /// lane order (unlike the float kernels, there is no rounding to
    /// re-order).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the inner dimensions differ.
    pub fn matmul_transposed_i32_into(
        &self,
        rhs: &QuantizedMatrix,
        out: &mut Vec<i32>,
    ) -> Result<(), ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new(
                "quant matmul_transposed",
                (self.rows, self.cols),
                (rhs.rows, rhs.cols),
            ));
        }
        out.clear();
        out.resize(self.rows * rhs.rows, 0);
        for i in 0..self.rows {
            let a = self.level_row(i);
            let orow = &mut out[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_i8_unrolled(a, rhs.level_row(j));
            }
        }
        Ok(())
    }

    /// Memory footprint of the quantized representation in bits, accounting
    /// for sub-byte packing the hardware would use.
    pub fn storage_bits(&self) -> usize {
        self.levels.len() * self.bits.bits() as usize
    }
}

/// Quantization error statistics between a matrix and its quantized form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantStats {
    /// Mean squared reconstruction error.
    pub mse: f32,
    /// Maximum absolute reconstruction error.
    pub max_err: f32,
    /// Fraction of elements whose sign flipped (should be 0 for b ≥ 2 except
    /// rounding at 0).
    pub sign_flips: f32,
}

/// Four-accumulator `i8 × i8 → i32` dot product. Exact and lane-order
/// independent (`i32` addition is associative); each term is at most
/// `127² = 16129`, so a single lane holds > 130 000 terms before it could
/// overflow — far beyond the row lengths this workspace uses.
fn dot_i8_unrolled(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "quant dot operands must match");
    let mut acc = [0i32; 4];
    let mut a_chunks = a.chunks_exact(4);
    let mut b_chunks = b.chunks_exact(4);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        acc[0] += ca[0] as i32 * cb[0] as i32;
        acc[1] += ca[1] as i32 * cb[1] as i32;
        acc[2] += ca[2] as i32 * cb[2] as i32;
        acc[3] += ca[3] as i32 * cb[3] as i32;
    }
    let mut tail = 0i32;
    for (&x, &y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        tail += x as i32 * y as i32;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Computes reconstruction-error statistics for `m` quantized at `bits`.
pub fn quant_stats(m: &Matrix, bits: BitWidth) -> QuantStats {
    let q = QuantizedMatrix::quantize(m, bits);
    let back = q.dequantize();
    let n = m.len().max(1) as f32;
    let mut mse = 0.0f32;
    let mut max_err = 0.0f32;
    let mut flips = 0usize;
    for (&a, &b) in m.as_slice().iter().zip(back.as_slice()) {
        let d = a - b;
        mse += d * d;
        max_err = max_err.max(d.abs());
        if (a > 0.0 && b < 0.0) || (a < 0.0 && b > 0.0) {
            flips += 1;
        }
    }
    QuantStats {
        mse: mse / n,
        max_err,
        sign_flips: flips as f32 / n,
    }
}

/// Spearman rank correlation between two score slices, used to verify the
/// paper's claim that quantized scores preserve attention-score ordering.
///
/// Returns 1.0 for perfectly concordant rankings, −1.0 for reversed. Slices
/// shorter than 2 return 1.0.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rank_correlation(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "rank_correlation length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    // Pearson correlation of the ranks.
    let mean = (n as f32 - 1.0) / 2.0;
    let mut num = 0.0f32;
    let mut da = 0.0f32;
    let mut db = 0.0f32;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        return 1.0;
    }
    num / (da * db).sqrt()
}

/// Average ranks with ties sharing the mean rank.
fn ranks(xs: &[f32]) -> Vec<f32> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
    let mut out = vec![0.0f32; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f32 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_into_reuses_buffer_and_matches_scalar_reference() {
        let mut rng = crate::rng::SplitMix64::new(23);
        let q = QuantizedMatrix::quantize(&rng.gaussian_matrix(9, 13, 1.0), BitWidth::Four);
        let k = QuantizedMatrix::quantize(&rng.gaussian_matrix(11, 13, 1.0), BitWidth::Four);
        // Scalar reference: left-to-right accumulation.
        let mut reference = vec![0i32; 9 * 11];
        for i in 0..9 {
            for j in 0..11 {
                reference[i * 11 + j] = q
                    .level_row(i)
                    .iter()
                    .zip(k.level_row(j))
                    .map(|(&x, &y)| x as i32 * y as i32)
                    .sum();
            }
        }
        assert_eq!(q.matmul_transposed_i32(&k).unwrap(), reference);
        // The _into variant overwrites stale contents and never
        // reallocates when capacity suffices.
        let mut buf = vec![i32::MIN; 9 * 11 + 7];
        let cap = buf.capacity();
        q.matmul_transposed_i32_into(&k, &mut buf).unwrap();
        assert_eq!(buf, reference);
        assert_eq!(buf.capacity(), cap);
        assert!(q
            .matmul_transposed_i32_into(
                &QuantizedMatrix::quantize(&rng.gaussian_matrix(2, 5, 1.0), BitWidth::Four),
                &mut buf
            )
            .is_err());
    }

    #[test]
    fn bitwidth_levels() {
        assert_eq!(BitWidth::One.max_level(), 1);
        assert_eq!(BitWidth::Four.max_level(), 7);
        assert_eq!(BitWidth::Eight.max_level(), 127);
        assert_eq!(BitWidth::Four.to_string(), "4-bit");
    }

    #[test]
    fn paper_fig3_example_4bit() {
        // Fig. 3: K has scaling factor M = 0.77 at 4 bits, so levels are
        // round(x * 7 / 0.77). Row (0.41, 1.09→clip? no: max is ~0.77…) —
        // use the paper's simpler property: the max-abs element maps to ±7.
        let k = Matrix::from_rows(&[
            &[0.41, 0.17, 0.37],
            &[0.66, 0.77, 0.11],
            &[-0.43, 0.33, 0.41],
            &[-0.24, -0.25, -0.58],
        ])
        .unwrap();
        let q = QuantizedMatrix::quantize(&k, BitWidth::Four);
        assert_eq!(q.scale(), 0.77 / 7.0);
        // The element equal to M quantizes to the max level.
        assert_eq!(q.level_row(1)[1], 7);
        // All levels within range.
        assert!(q.levels().iter().all(|&l| (-7..=7).contains(&l)));
    }

    #[test]
    fn one_bit_is_sign() {
        let m = Matrix::from_rows(&[&[3.0, -0.1, 0.0]]).unwrap();
        let q = QuantizedMatrix::quantize(&m, BitWidth::One);
        assert_eq!(q.levels(), &[1, -1, 1]);
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let m = Matrix::zeros(2, 2);
        for bits in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&m, bits);
            assert_eq!(q.scale(), 0.0);
            let back = q.dequantize();
            assert!(back.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn dequantize_error_bounded_by_half_step() {
        let m = Matrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f32 * 0.71).sin() * 2.5);
        for bits in [BitWidth::Four, BitWidth::Eight] {
            let q = QuantizedMatrix::quantize(&m, bits);
            let back = q.dequantize();
            let half_step = q.scale() / 2.0 + 1e-6;
            for (&a, &b) in m.as_slice().iter().zip(back.as_slice()) {
                assert!(
                    (a - b).abs() <= half_step,
                    "{bits}: err {} > half step {half_step}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn eight_bit_better_than_four_bit() {
        let m = Matrix::from_fn(16, 16, |i, j| ((i as f32 - j as f32) * 0.13).cos());
        let s4 = quant_stats(&m, BitWidth::Four);
        let s8 = quant_stats(&m, BitWidth::Eight);
        assert!(s8.mse < s4.mse);
        assert!(s8.max_err < s4.max_err);
    }

    #[test]
    fn no_sign_flips_at_4bit_away_from_zero() {
        // All magnitudes well above one quantization step.
        let m = Matrix::from_fn(4, 4, |i, j| if (i + j) % 2 == 0 { 1.0 } else { -1.0 });
        let s = quant_stats(&m, BitWidth::Four);
        assert_eq!(s.sign_flips, 0.0);
    }

    #[test]
    fn integer_scores_match_float_of_dequantized() {
        let q_m = Matrix::from_fn(3, 4, |i, j| ((i + 2 * j) as f32 * 0.41).sin());
        let k_m = Matrix::from_fn(5, 4, |i, j| ((3 * i + j) as f32 * 0.29).cos());
        let q = QuantizedMatrix::quantize(&q_m, BitWidth::Four);
        let k = QuantizedMatrix::quantize(&k_m, BitWidth::Four);
        let ints = q.matmul_transposed_i32(&k).unwrap();
        let float = q.dequantize().matmul_transposed(&k.dequantize()).unwrap();
        let s = q.scale() * k.scale();
        for i in 0..3 {
            for j in 0..5 {
                let expect = ints[i * 5 + j] as f32 * s;
                assert!((float[(i, j)] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn quant_matmul_shape_error() {
        let a = QuantizedMatrix::quantize(&Matrix::zeros(2, 3), BitWidth::Four);
        let b = QuantizedMatrix::quantize(&Matrix::zeros(2, 4), BitWidth::Four);
        assert!(a.matmul_transposed_i32(&b).is_err());
    }

    #[test]
    fn storage_bits_accounts_for_packing() {
        let m = Matrix::zeros(4, 4);
        assert_eq!(
            QuantizedMatrix::quantize(&m, BitWidth::One).storage_bits(),
            16
        );
        assert_eq!(
            QuantizedMatrix::quantize(&m, BitWidth::Four).storage_bits(),
            64
        );
        assert_eq!(
            QuantizedMatrix::quantize(&m, BitWidth::Eight).storage_bits(),
            128
        );
    }

    #[test]
    fn rank_correlation_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-6);
        assert!((rank_correlation(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn rank_correlation_handles_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [3.0, 3.0, 5.0];
        assert!(rank_correlation(&a, &b) > 0.99);
    }

    #[test]
    fn quantized_scores_preserve_rank_at_8bit() {
        // The §3.2 claim: quantized score rank ≈ exact score rank.
        let q_m = Matrix::from_fn(1, 32, |_, j| ((j as f32) * 0.77).sin());
        let k_m = Matrix::from_fn(24, 32, |i, j| (i as f32 * 1.3 + j as f32 * 0.7).cos());
        let exact = q_m.matmul_transposed(&k_m).unwrap();
        let q = QuantizedMatrix::quantize(&q_m, BitWidth::Eight);
        let k = QuantizedMatrix::quantize(&k_m, BitWidth::Eight);
        let approx: Vec<f32> = q
            .matmul_transposed_i32(&k)
            .unwrap()
            .iter()
            .map(|&x| x as f32)
            .collect();
        let rho = rank_correlation(exact.row(0), &approx);
        assert!(rho > 0.99, "8-bit rank correlation too low: {rho}");
    }
}
