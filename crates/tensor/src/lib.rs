//! # lat-tensor
//!
//! Dense tensor substrate for the lat-fpga reproduction of the DAC'22 paper
//! *"A Length Adaptive Algorithm-Hardware Co-design of Transformer on FPGA
//! Through Sparse Attention and Dynamic Pipelining"*.
//!
//! This crate provides everything the algorithm layer needs to express both
//! the full-precision reference path and the accelerator's quantized path:
//!
//! - [`Matrix`]: a row-major `f32` matrix with checked shapes and the small
//!   set of BLAS-like kernels a transformer encoder needs ([`Matrix::matmul`],
//!   [`Matrix::matmul_transposed`], transpose, row views).
//! - [`ops`]: numerically careful softmax, layer normalization, GELU,
//!   masking and reduction kernels, written exactly in the decomposed form
//!   the paper's hardware uses (exp pass + normalize pass).
//! - [`quant`]: the paper's §3.2 quantization — affine symmetric
//!   `x' = round((2^(b-1)-1)/|M| · x)` for 4/8 bits and the 1-bit sign
//!   quantizer — plus rank-preservation helpers.
//! - [`lut`]: the 256-entry look-up-table integer multiplier used by the
//!   At-Sel hardware for approximate distance computation.
//! - [`fixed`]: Q-format 8-bit fixed point mirroring the accelerator
//!   datapath (1 DSP = one 8-bit MAC per cycle).
//!
//! # Example
//!
//! ```
//! use lat_tensor::{Matrix, ops};
//!
//! # fn main() -> Result<(), lat_tensor::ShapeError> {
//! let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
//! let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
//! let scores = q.matmul_transposed(&k)?;
//! let probs = ops::softmax_rows(&scores);
//! assert!((probs.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod matrix;

pub mod fixed;
pub mod lut;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod tiled;

pub use error::ShapeError;
pub use matrix::{dot_unrolled, Matrix};
