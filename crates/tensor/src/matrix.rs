use crate::ShapeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
///
/// This is the workhorse of the full-precision reference path. It is a thin,
/// checked wrapper over a `Vec<f32>`; all binary operations validate shapes
/// and return [`ShapeError`] on mismatch rather than panicking, so the
/// algorithm layer can surface configuration mistakes cleanly.
///
/// # Example
///
/// ```
/// use lat_tensor::Matrix;
///
/// # fn main() -> Result<(), lat_tensor::ShapeError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows`×`cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows are ragged (unequal lengths) or the
    /// input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let r = rows.len();
        if r == 0 {
            return Err(ShapeError::new("from_rows", (0, 0), (0, 0)));
        }
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(ShapeError::new("from_rows", (r, c), (1, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterate over rows as slices.
    ///
    /// A `rows×0` matrix yields `rows` empty slices (a `chunks_exact`-based
    /// implementation used to yield none, silently losing the row count).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.rows).map(move |i| &self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns a new matrix containing only the rows with the given indices,
    /// in the given order (gather).
    ///
    /// This is the software analogue of the Stage-2.1 candidate load: the
    /// top-k indices from pre-selection gather the `K` and `V` rows that will
    /// take part in exact attention.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Matrix transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Dense matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // The zero-skip fast path may only skip rhs rows that are entirely
        // finite: `0.0 * inf/NaN` must propagate NaN, exactly as
        // `matmul_transposed` does on the same operands. For finite rows
        // the skip is bit-exact (adding ±0.0 to any accumulator is a
        // no-op under round-to-nearest here).
        let skippable: Vec<bool> = (0..rhs.rows)
            .map(|k| rhs.row(k).iter().all(|v| v.is_finite()))
            .collect();
        // i-k-j loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 && skippable[k] {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                // 4-wide chunks: each out[i][j] still receives its k-terms
                // in the same order as the scalar loop (bit-identical),
                // but the independent j lanes are explicit for the
                // vectorizer.
                let mut o_chunks = orow.chunks_exact_mut(4);
                let mut r_chunks = rrow.chunks_exact(4);
                for (o, r) in (&mut o_chunks).zip(&mut r_chunks) {
                    o[0] += a * r[0];
                    o[1] += a * r[1];
                    o[2] += a * r[2];
                    o[3] += a * r[3];
                }
                for (o, r) in o_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(r_chunks.remainder())
                {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product against a transposed right operand: `self · rhsᵀ`.
    ///
    /// This is the natural layout for attention scores `S = Q · Kᵀ`, where
    /// both `Q` and `K` store one token per row.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.cols()`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new(
                "matmul_transposed",
                self.shape(),
                rhs.shape(),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..rhs.rows {
                out[(i, j)] = dot_unrolled(arow, rhs.row(j));
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("add", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("sub", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds `bias` (a length-`cols` vector) to every row.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != self.cols()`.
    pub fn add_row_bias(&self, bias: &[f32]) -> Result<Matrix, ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(
                "add_row_bias",
                self.shape(),
                (1, bias.len()),
            ));
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            let row = out.row_mut(i);
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
        Ok(out)
    }

    /// Multiplies every element by `s`.
    pub fn scaled(&self, s: f32) -> Matrix {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Maximum absolute value over all elements (the quantization scaling
    /// factor `M` of the paper's §3.2). Returns 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Mean squared difference against another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn mse(&self, rhs: &Matrix) -> Result<f32, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("mse", self.shape(), rhs.shape()));
        }
        if self.is_empty() {
            return Ok(0.0);
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        Ok(sum / self.data.len() as f32)
    }

    /// Extracts the sub-matrix of the first `n` rows (a view onto shorter
    /// sequences inside a padded buffer).
    ///
    /// # Panics
    ///
    /// Panics if `n > self.rows()`.
    pub fn head_rows(&self, n: usize) -> Matrix {
        assert!(
            n <= self.rows,
            "head_rows({n}) out of bounds ({})",
            self.rows
        );
        Matrix {
            rows: n,
            cols: self.cols,
            data: self.data[..n * self.cols].to_vec(),
        }
    }

    /// Vertically stacks `self` on top of `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if column counts differ.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new("vstack", self.shape(), rhs.shape()));
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// Horizontal slice of columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end || end > self.cols()`.
    pub fn col_slice(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "bad col slice {start}..{end}"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Horizontally concatenates `self` with `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError::new("hstack", self.shape(), rhs.shape()));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }
}

/// Dot product with four independent accumulators, reduced in a fixed
/// `(a0+a1)+(a2+a3)` tree. Breaking the single FP-add dependency chain is
/// what buys the speedup on a scalar core; the summation order differs
/// from a naive left fold (float addition is not associative), but it is
/// itself fixed, so results stay deterministic run-to-run and
/// platform-independent under IEEE-754.
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must match");
    let mut acc = [0.0f32; 4];
    let mut a_chunks = a.chunks_exact(4);
    let mut b_chunks = b.chunks_exact(4);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err.op(), "from_rows");
    }

    #[test]
    fn iter_rows_yields_every_row_even_with_zero_cols() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0], &[5.0, 6.0]]);

        // Degenerate 3×0 matrix: still 3 rows, each the empty slice.
        let empty_cols = Matrix::zeros(3, 0);
        let rows: Vec<&[f32]> = empty_cols.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));

        // 0×n matrix: no rows.
        assert_eq!(Matrix::zeros(0, 4).iter_rows().count(), 0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(approx_eq(&c, &expect, 1e-6));
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f32) - (j as f32) * 0.7);
        let via_t = a.matmul(&b.transposed()).unwrap();
        let direct = a.matmul_transposed(&b).unwrap();
        assert!(approx_eq(&via_t, &direct, 1e-4));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_transposed(&Matrix::zeros(2, 4)).is_err());
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]).unwrap();
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 7, |i, j| (i * 7 + j) as f32);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let b = Matrix::from_fn(2, 3, |i, j| (i * j) as f32 + 1.0);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(approx_eq(&c, &a, 1e-6));
    }

    #[test]
    fn add_row_bias_applies_per_column() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_bias(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(a.add_row_bias(&[1.0]).is_err());
    }

    #[test]
    fn max_abs_finds_magnitude() {
        let m = Matrix::from_rows(&[&[0.5, -3.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(m.max_abs(), 3.0);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn head_rows_takes_prefix() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let h = m.head_rows(2);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn matmul_and_transposed_agree_on_non_finite_inputs() {
        // Regression: the zero-skip fast path used to swallow 0·inf and
        // 0·NaN, so A·B and A·(Bᵀ)ᵀ-via-matmul_transposed disagreed on
        // the same operands. Both must propagate NaN now.
        let a = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        let b =
            Matrix::from_vec(3, 2, vec![f32::INFINITY, 2.0, 3.0, 4.0, f32::NAN, f32::NAN]).unwrap();
        let direct = a.matmul(&b).unwrap();
        let via_t = a.matmul_transposed(&b.transposed()).unwrap();
        // Column 0: 0·inf → NaN; column 1: 0·NaN → NaN. Both kernels.
        for m in [&direct, &via_t] {
            assert!(m[(0, 0)].is_nan(), "0·inf must poison the dot product");
            assert!(m[(0, 1)].is_nan(), "0·NaN must poison the dot product");
        }
    }

    #[test]
    fn matmul_zero_skip_is_bit_exact_on_finite_inputs() {
        // A sparse operand with finite values: the skip path and the
        // skip-free path must agree bit-for-bit (adding ±0.0 is a no-op).
        let mut rng = crate::rng::SplitMix64::new(9);
        let mut a = rng.gaussian_matrix(7, 11, 1.0);
        for i in 0..7 {
            for j in 0..11 {
                if (i + j) % 3 == 0 {
                    a[(i, j)] = 0.0;
                }
                if (i + j) % 5 == 0 {
                    a[(i, j)] = -0.0;
                }
            }
        }
        let b = rng.gaussian_matrix(11, 5, 1.0);
        let skipped = a.matmul(&b).unwrap();
        // Reference without any skip: a dense copy where zeros are kept
        // by perturbing... instead compute via explicit triple loop.
        let mut reference = Matrix::zeros(7, 5);
        for i in 0..7 {
            for k in 0..11 {
                let av = a[(i, k)];
                for j in 0..5 {
                    reference[(i, j)] += av * b[(k, j)];
                }
            }
        }
        for i in 0..7 {
            for j in 0..5 {
                assert_eq!(
                    skipped[(i, j)].to_bits(),
                    reference[(i, j)].to_bits(),
                    "skip path diverged at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn dot_unrolled_matches_dense_expectations() {
        // Exact on integer-valued floats (no rounding), any length incl.
        // the <4 remainder path.
        for n in [0usize, 1, 3, 4, 5, 8, 13] {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| (i + 1) as f32).collect();
            let expect: f32 = (0..n).map(|i| (i * (i + 1)) as f32).sum();
            assert_eq!(dot_unrolled(&a, &b), expect, "length {n}");
        }
    }

    #[test]
    fn vstack_and_hstack() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[2.0, 2.0]);

        let c = Matrix::filled(1, 3, 3.0);
        let h = a.hstack(&c).unwrap();
        assert_eq!(h.shape(), (1, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 3.0, 3.0, 3.0]);
        assert!(a.hstack(&b).is_err());
    }

    #[test]
    fn col_slice_extracts_range() {
        let m = Matrix::from_fn(2, 4, |_, j| j as f32);
        let s = m.col_slice(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * j) as f32);
        assert_eq!(m.mse(&m).unwrap(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert!(s.contains("Matrix 2x2"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(1);
    }
}
