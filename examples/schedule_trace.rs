//! Visualize the length-aware dynamic pipeline: Algorithm 1 stage
//! allocation for BERT-base, then the Fig. 5 timing diagram for a batch of
//! variable-length sequences under all three scheduling policies.
//!
//! Run with: `cargo run --release --example schedule_trace`

use lat_fpga::core::pipeline::{render_gantt, schedule_batch, LinearStageTiming, SchedulingPolicy};
use lat_fpga::core::stage_alloc::{allocate_stages, priorities, ResourceModel};
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::{AttentionMode, OperatorGraph};

fn main() {
    let cfg = ModelConfig::bert_base();
    let graph = OperatorGraph::encoder(&cfg);
    let mode = AttentionMode::paper_sparse();
    let s_avg = 94;

    // ----- Algorithm 1: stage allocation --------------------------------
    println!("=== Algorithm 1: encoder coarse-grained stage allocation ===\n");
    let prio = priorities(&graph, s_avg, mode);
    println!("operator priorities P(v, s_avg={s_avg}) (Eq. 1, critical path):");
    for (op, p) in graph.operators().iter().zip(&prio) {
        println!("  {:<12} {:>14}", op.kind.label(), p);
    }

    let mut alloc = allocate_stages(&graph, s_avg, mode, ResourceModel::default());
    alloc.balance_to_budget(&graph, s_avg, mode);
    println!("\nstages (after proportional DSP balancing to 3000 DSPs):");
    for (i, st) in alloc.stages().iter().enumerate() {
        let ops: Vec<String> = st
            .ops
            .iter()
            .zip(&st.parallelism)
            .map(|(k, n)| format!("{}(N={n})", k.label()))
            .collect();
        println!("  stage {i}: {} [{} DSP]", ops.join(", "), st.dsp);
    }
    let lats = alloc.stage_latencies(&graph, s_avg, mode);
    println!("  per-sequence stage latencies at s={s_avg}: {lats:?} cycles");

    // ----- Fig. 5 timing diagram ----------------------------------------
    println!("\n=== Length-aware dynamic pipeline (Fig. 5) ===\n");
    let lengths = [140usize, 100, 82, 78, 72];
    let per_token: Vec<f64> = lats.iter().map(|&c| c as f64 / s_avg as f64).collect();
    let timing = LinearStageTiming::new(per_token, vec![0; alloc.num_stages()]);
    println!("batch (sorted desc): {lengths:?}, 2 encoder layers\n");

    for policy in [
        SchedulingPolicy::LengthAware,
        SchedulingPolicy::PadToMax,
        SchedulingPolicy::MicroBatch { size: 2 },
    ] {
        let s = schedule_batch(&lengths, 2, &timing, policy);
        println!("--- {policy}: makespan {} cycles ---", s.makespan());
        println!("{}", render_gantt(&s, 90));
    }
    println!("(digits are sequence indices in decreasing-length order; '.' is idle)");
}
