//! Quickstart: the sparse attention operator end-to-end, including the
//! Fig. 3 walk-through (quantize → LUT scores → Top-k → exact sparse
//! attention) and a fidelity comparison against dense attention.
//!
//! Run with: `cargo run --release --example quickstart`

use lat_fpga::core::preselect::{preselect, PreselectConfig};
use lat_fpga::core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_fpga::model::attention::{AttentionOp, DenseAttention};
use lat_fpga::tensor::quant::{BitWidth, QuantizedMatrix};
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::tensor::{ops, Matrix};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // ----- Fig. 3 walk-through on a toy example ------------------------
    println!("=== Fig. 3 walk-through: candidate selection from quantized scores ===\n");
    let q = Matrix::from_rows(&[&[0.3, 0.7, 1.2, 0.5]])?;
    let k = Matrix::from_rows(&[
        &[0.7, -0.5, 0.3, 0.4],
        &[0.4, 0.1, -0.3, 0.4],
        &[0.4, 0.4, 0.4, 0.1],
        &[-0.2, -0.3, -0.6, 0.1],
    ])?;

    let exact = q.matmul_transposed(&k)?;
    println!("exact scores q·kᵀ:      {:?}", exact.row(0));

    let qq = QuantizedMatrix::quantize(&q, BitWidth::Four);
    let qk = QuantizedMatrix::quantize(&k, BitWidth::Four);
    println!(
        "4-bit q levels (scale {:.4}): {:?}",
        qq.scale(),
        qq.level_row(0)
    );
    println!("4-bit K levels (scale {:.4}):", qk.scale());
    for i in 0..qk.rows() {
        println!("  k{}: {:?}", i + 1, qk.level_row(i));
    }

    let sel = preselect(&q, &k, PreselectConfig::fig3())?;
    println!(
        "quantized scores:       {:?}",
        (0..4).map(|j| sel.score(0, j)).collect::<Vec<_>>()
    );
    println!(
        "Top-2 candidates:       {:?} (0-indexed)\n",
        sel.candidates[0]
    );

    // ----- Sparse vs dense attention on realistic sizes ------------------
    println!("=== Sparse vs dense attention (n = 128, d = 64, k = 30, 1-bit) ===\n");
    let mut rng = SplitMix64::new(2022);
    let n = 128;
    let d = 64;
    let q = rng.gaussian_matrix(n, d, 1.0);
    let km = rng.gaussian_matrix(n, d, 1.0);
    let v = rng.gaussian_matrix(n, d, 1.0);

    let dense = DenseAttention.attend(&q, &km, &v)?;
    let sparse_op = SparseAttention::new(SparseAttentionConfig::paper_default());
    let out = sparse_op.attend_with_details(&q, &km, &v)?;

    let mut cos = 0.0f32;
    for i in 0..n {
        cos += ops::cosine_similarity(dense.row(i), out.output.row(i));
    }
    cos /= n as f32;

    println!("mean output cosine similarity vs dense: {cos:.4}");
    println!(
        "attention complexity reduction:         {:.1}%  (paper: >80% at Top-30)",
        100.0 * out.complexity_reduction(n, n, d)
    );
    println!(
        "exact-path MACs: {} (dense would be {})",
        out.exact_macs,
        SparseAttention::dense_macs(n, n, d)
    );
    Ok(())
}
