//! End-to-end *software* pipeline: token sequences → deterministic
//! embeddings → variable-length batch through the encoder with the sparse
//! attention operator via [`lat_core::runtime::BatchRunner`] — no padding
//! anywhere, outputs restored to input order.
//!
//! Run with: `cargo run --release --example software_runner`

use lat_fpga::core::runtime::{BatchRunner, RunnerAttention};
use lat_fpga::core::sparse::SparseAttentionConfig;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::embedding::EmbeddingTable;
use lat_fpga::model::encoder::Encoder;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::tensor::{ops, Matrix};
use lat_fpga::workloads::datasets::DatasetSpec;
use std::error::Error;
// audit:allow(d2) -- this example *benchmarks* the software path; wall time is its output
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(0x50F7);
    let encoder = Encoder::random(&cfg, &mut rng);
    let embeddings = EmbeddingTable::new(cfg.hidden_dim, 0xE313D);

    // Token sequences with RTE-like lengths (vocabulary of 1000 ids).
    let dataset = DatasetSpec::rte();
    let lengths = dataset.sample_batch(&mut rng, 8);
    println!("batch lengths: {lengths:?}\n");
    let batch: Vec<Matrix> = lengths
        .iter()
        .map(|&n| {
            let tokens: Vec<u32> = (0..n).map(|_| rng.next_below(1000) as u32).collect();
            embeddings.embed_with_positions(&tokens)
        })
        .collect();

    // Sparse runner (the paper's operating point) vs the dense reference.
    let sparse_runner = BatchRunner::new(
        encoder.clone(),
        RunnerAttention::Sparse(SparseAttentionConfig::paper_default()),
    );
    let dense_runner = BatchRunner::new(encoder, RunnerAttention::Dense);

    let t0 = Instant::now(); // audit:allow(d2) -- measured wall time is the demo's point
    let sparse_out = sparse_runner.run(&batch)?;
    let t_sparse = t0.elapsed();
    let t0 = Instant::now(); // audit:allow(d2) -- measured wall time is the demo's point
    let dense_out = dense_runner.run(&batch)?;
    let t_dense = t0.elapsed();

    println!(
        "processing order (decreasing length): {:?}",
        sparse_out.processing_order
    );
    println!(
        "tokens processed (zero padding):      {}",
        sparse_out.tokens
    );
    println!(
        "software wall time: sparse {:.2?} vs dense {:.2?}\n",
        t_sparse, t_dense
    );

    println!("per-sequence output fidelity (sparse vs dense, mean row cosine):");
    for (i, (s, d)) in sparse_out
        .outputs
        .iter()
        .zip(&dense_out.outputs)
        .enumerate()
    {
        let mut cos = 0.0f32;
        for r in 0..s.rows() {
            cos += ops::cosine_similarity(s.row(r), d.row(r));
        }
        cos /= s.rows() as f32;
        println!("  seq {i} (len {:>3}): {:.4}", s.rows(), cos);
    }

    let pooled = sparse_runner.encode_pooled_batch(&batch)?;
    println!(
        "\npooled sentence embeddings: {} vectors of dim {}",
        pooled.len(),
        pooled[0].len()
    );
    Ok(())
}
