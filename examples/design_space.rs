//! Design-space exploration + roofline analysis of the accelerator:
//! sweep the resource-model knobs on an RTE workload, report the best
//! design, then show its per-stage CTC profile and the Fig. 2(b) state
//! machine trace for one batch.
//!
//! Run with: `cargo run --release --example design_space`

use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::dse::{explore, DseGrid};
use lat_fpga::hwsim::roofline::{machine_balance, stage_ctc};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::hwsim::statemachine::{buffer_bytes, trace_from_schedule};
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::workloads::datasets::DatasetSpec;

fn main() {
    let cfg = ModelConfig::bert_base();
    let spec = FpgaSpec::alveo_u280();
    let dataset = DatasetSpec::rte();
    let mut rng = SplitMix64::new(0xD5E2);
    let workload = dataset.sample_batches(&mut rng, 16, 2);

    // ---- DSE ------------------------------------------------------------
    println!("=== Design-space exploration (BERT-base / RTE) ===\n");
    let grid = DseGrid::default();
    let points = explore(&cfg, AttentionMode::paper_sparse(), &spec, &workload, &grid);
    println!(
        "{:<14} {:<14} {:<13} {:<8} {:<12} util",
        "DSP/instance", "stage budget", "tuned length", "stages", "latency(ms)"
    );
    for p in points.iter().take(6) {
        println!(
            "{:<14} {:<14} {:<13} {:<8} {:<12.3} {:.1}%",
            p.dsp_per_instance,
            p.stage_budget,
            p.tuning_length,
            p.num_stages,
            p.seconds * 1e3,
            100.0 * p.utilization
        );
    }
    let best = &points[0];
    println!(
        "\nbest design: {} DSP/instance, per-stage budget {}, tuned at length {}\n",
        best.dsp_per_instance, best.stage_budget, best.tuning_length
    );

    // ---- CTC / roofline of the default design ---------------------------
    println!("=== CTC / roofline (default design, s = 68, batch 16) ===\n");
    println!(
        "machine balance: {:.2} ops/byte (compute roof above this intensity)\n",
        machine_balance(&spec)
    );
    let design = AcceleratorDesign::new(&cfg, AttentionMode::paper_sparse(), spec.clone(), 68);
    for c in stage_ctc(&design, 68, 16) {
        println!(
            "stage {}: compute {:>8} cyc | memory {:>6} cyc | CTC {:>7.1} | {}",
            c.stage, c.compute_cycles, c.memory_cycles, c.ctc, c.bound
        );
    }

    // ---- State machine trace --------------------------------------------
    println!("\n=== Fig. 2(b) state machine, one batch ===\n");
    let batch = &workload[0];
    let schedule = design.schedule(batch, SchedulingPolicy::LengthAware);
    let trace = trace_from_schedule(&schedule, batch);
    println!("first 12 transitions:");
    for t in trace.transitions.iter().take(12) {
        println!("  cycle {:>9}: stage {} -> {:?}", t.cycle, t.stage, t.into);
    }
    println!("\nper-stage idle fractions:");
    for stage in 0..schedule.num_stages() {
        println!(
            "  stage {stage}: {:.1}% idle ({} activations)",
            100.0 * trace.idle_fraction(stage),
            trace.activations(stage)
        );
    }
    println!(
        "\ndouble-buffer high water: {} tokens ({} KiB at 8-bit, d = {}) of {} MiB on-chip",
        trace.buffer_high_water_tokens,
        buffer_bytes(trace.buffer_high_water_tokens, cfg.hidden_dim) / 1024,
        cfg.hidden_dim,
        spec.onchip_bytes / (1024 * 1024)
    );
}
