//! SQuAD-style variable-length batches through the simulated FPGA
//! accelerator: the full co-design (sparse attention + length-aware
//! pipelining) against the padded dense baseline and the CPU/GPU platform
//! models — a miniature of the Fig. 7(a) evaluation on one dataset.
//!
//! Run with: `cargo run --release --example squad_pipeline`

use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::platforms::Platform;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::workloads::datasets::DatasetSpec;

fn main() {
    let cfg = ModelConfig::bert_base();
    let dataset = DatasetSpec::squad_v1();
    let mut rng = SplitMix64::new(7);
    let batch = dataset.sample_batch(&mut rng, 16);
    println!(
        "BERT-base on a {} batch of 16: lengths {:?}\n",
        dataset.name, batch
    );

    let ours = AcceleratorDesign::new(
        &cfg,
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        dataset.avg_len,
    );
    let baseline = AcceleratorDesign::new(
        &cfg,
        AttentionMode::Dense,
        FpgaSpec::alveo_u280(),
        dataset.max_len,
    );

    let r_ours = ours.run_batch(&batch, SchedulingPolicy::LengthAware);
    let r_pad = ours.run_batch(&batch, SchedulingPolicy::PadToMax);
    let r_micro = ours.run_batch(&batch, SchedulingPolicy::MicroBatch { size: 4 });
    let r_base = baseline.run_batch(&batch, SchedulingPolicy::PadToMax);

    println!("FPGA co-design (length-aware, sparse):\n{r_ours}\n");
    println!("FPGA co-design chip, pad-to-max schedule:\n{r_pad}\n");
    println!("FPGA co-design chip, micro-batch(4) schedule:\n{r_micro}\n");
    println!("FPGA baseline (dense, padded):\n{r_base}\n");

    println!("cross-platform batch latency:");
    println!(
        "  {:24} {:>10.2} ms   (1.00x)",
        "FPGA length-aware",
        r_ours.seconds * 1e3
    );
    for p in Platform::all_presets() {
        let t = p.batch_seconds(&cfg, &batch);
        println!(
            "  {:24} {:>10.2} ms   ({:.1}x slower)",
            p.kind.to_string(),
            t * 1e3,
            t / r_ours.seconds
        );
    }
    println!(
        "  {:24} {:>10.2} ms   ({:.1}x slower)",
        "FPGA dense baseline",
        r_base.seconds * 1e3,
        r_base.seconds / r_ours.seconds
    );
    println!(
        "\nscheduling alone saves {:.1}% vs pad-to-max on the same chip",
        100.0 * (1.0 - r_ours.seconds / r_pad.seconds)
    );
}
