//! Sweep the Top-k parameter of sparse attention on the synthetic
//! attention-retrieval task across the three datasets — a miniature of the
//! Fig. 6 accuracy evaluation, printed as raw task accuracy together with
//! pre-selection fidelity (candidate recall and retained softmax mass).
//!
//! Run with: `cargo run --release --example accuracy_sweep`

use lat_fpga::core::preselect::{preselect_fidelity, PreselectConfig};
use lat_fpga::core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_fpga::model::attention::DenseAttention;
use lat_fpga::tensor::quant::BitWidth;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::workloads::accuracy::evaluate_on_dataset;
use lat_fpga::workloads::datasets::DatasetSpec;
use lat_fpga::workloads::task::{TaskConfig, TaskGenerator};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let generator = TaskGenerator::new(TaskConfig::default(), 4242);
    let trials = 120;

    println!("Top-k sparse attention accuracy sweep (1-bit pre-selection, {trials} trials/cell)\n");
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "dataset", "dense", "k=50", "k=40", "k=30", "k=20", "k=10"
    );
    for dataset in DatasetSpec::paper_datasets() {
        let dense = evaluate_on_dataset(&DenseAttention, &generator, &dataset, trials, 99)?;
        print!("{:<12} {:>6.1}%", dataset.name, dense.percent());
        for k in [50usize, 40, 30, 20, 10] {
            let op = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(k));
            let r = evaluate_on_dataset(&op, &generator, &dataset, trials, 99)?;
            print!(" {:>6.1}%", r.percent());
        }
        println!();
    }

    // Pre-selection fidelity: why the accuracy behaves this way.
    println!("\npre-selection fidelity on one task instance family (n = 200):");
    let mut rng = SplitMix64::new(5);
    let inst = generator.generate(&mut rng, 200);
    println!(
        "{:<8} {:>6} {:>16} {:>16}",
        "bits", "k", "top-k recall", "retained mass"
    );
    for bits in [BitWidth::One, BitWidth::Four] {
        for k in [10usize, 30, 50] {
            let fid = preselect_fidelity(&inst.q, &inst.k, PreselectConfig { bits, k })?;
            println!(
                "{:<8} {:>6} {:>15.1}% {:>15.1}%",
                bits.to_string(),
                k,
                100.0 * fid.mean_recall,
                100.0 * fid.mean_retained_mass
            );
        }
    }
    println!("\n(1-bit pre-selection is magnitude-blind: sign-matched decoys rank top,");
    println!(" so small k loses true-evidence mass — the Fig. 6 degradation mechanism)");
    Ok(())
}
