//! Vendored API-subset stand-in for `serde`.
//!
//! The real crate cannot be fetched in this offline build environment. The
//! workspace only *derives* `Serialize`/`Deserialize` (as forward-looking
//! annotations — no serialization happens yet), so this shim provides the two
//! marker traits and re-exports the no-op derive macros. Swap back to
//! crates.io `serde` when the build environment has network access (see
//! `vendor/README.md`).

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
