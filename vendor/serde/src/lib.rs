//! Vendored API-subset stand-in for `serde`.
//!
//! The real crate cannot be fetched in this offline build environment. The
//! workspace *derives* `Serialize`/`Deserialize` (as forward-looking
//! annotations), so this shim provides the two marker traits and re-exports
//! the no-op derive macros. Swap back to crates.io `serde` when the build
//! environment has network access (see `vendor/README.md`).
//!
//! Unlike the upstream markers, the shim also ships a small hand-rolled
//! canonical-JSON writer ([`json`]) so harness artifacts (audit findings,
//! bench reports) can be emitted as real, byte-stable JSON without registry
//! access — the ROADMAP's "extend the vendored serde shim to actually
//! serialize" note.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Hand-rolled canonical JSON: a tiny value tree plus a writer that emits
/// byte-stable output (object keys sorted, no insignificant whitespace
/// variation, deterministic float formatting). This is the offline stand-in
/// for `serde_json` limited to what the workspace's artifact writers need.
pub mod json {
    use std::collections::BTreeMap;

    /// A JSON value. Objects use [`BTreeMap`] so key order — and therefore
    /// the serialized byte stream — is canonical by construction.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Signed integer (serialized without a fractional part).
        Int(i64),
        /// Unsigned integer (serialized without a fractional part).
        UInt(u64),
        /// Finite float, formatted with Rust's shortest-roundtrip `Display`.
        /// Non-finite values serialize as `null` (JSON has no NaN/inf).
        Float(f64),
        /// String (escaped per RFC 8259).
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object with canonically (byte-wise) sorted keys.
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Convenience: build an object from key/value pairs.
        pub fn obj<I>(pairs: I) -> Value
        where
            I: IntoIterator<Item = (String, Value)>,
        {
            Value::Obj(pairs.into_iter().collect())
        }

        /// Serializes to the canonical compact form (no newlines, keys
        /// sorted). Byte-identical for equal values, on every platform.
        pub fn to_canonical_string(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, None, 0);
            out
        }

        /// Serializes to a human-readable pretty form with `indent`-space
        /// indentation. Still canonical: keys sorted, floats deterministic.
        pub fn to_pretty_string(&self, indent: usize) -> String {
            let mut out = String::new();
            self.write(&mut out, Some(indent), 0);
            out.push('\n');
            out
        }

        fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Int(i) => out.push_str(&i.to_string()),
                Value::UInt(u) => out.push_str(&u.to_string()),
                Value::Float(f) => {
                    if f.is_finite() {
                        // Shortest-roundtrip Display is deterministic and
                        // re-parses to the same bits.
                        let s = f.to_string();
                        out.push_str(&s);
                        // `1.0` displays as "1" — keep a fractional marker so
                        // consumers see a float-typed field.
                        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                            out.push_str(".0");
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => write_escaped(out, s),
                Value::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent, depth + 1);
                        item.write(out, indent, depth + 1);
                    }
                    if !items.is_empty() {
                        newline_indent(out, indent, depth);
                    }
                    out.push(']');
                }
                Value::Obj(map) => {
                    out.push('{');
                    for (i, (k, v)) in map.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent, depth + 1);
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    }
                    if !map.is_empty() {
                        newline_indent(out, indent, depth);
                    }
                    out.push('}');
                }
            }
        }
    }

    /// Error from [`parse`]: byte offset plus a short message.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ParseError {
        /// Byte offset into the input where parsing failed.
        pub offset: usize,
        /// What was expected or found.
        pub message: String,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "JSON parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses RFC 8259 JSON text into a [`Value`] — the reader half the
    /// artifact pipeline needs (e.g. `BENCH_*.json` read-migrate-append).
    /// Round-trips everything the writer emits: numbers without `.`/`e`
    /// parse as `Int`/`UInt`, everything else as `Float`; escape sequences
    /// per the writer plus `\/`, `\b`, `\f` and `\uXXXX` (no surrogate
    /// pairing — artifacts are ASCII).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input or trailing garbage.
    pub fn parse(s: &str) -> Result<Value, ParseError> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after value"));
        }
        Ok(v)
    }

    fn err(offset: usize, message: &str) -> ParseError {
        ParseError {
            offset,
            message: message.to_string(),
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(err(*pos, "invalid literal"))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err(*pos, "unexpected end of input")),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(err(*pos, "expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(err(*pos, "expected ':' after object key"));
                    }
                    *pos += 1;
                    map.insert(key, parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(err(*pos, "expected ',' or '}' in object")),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected '\"'"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = s_slice(bytes, *pos + 1, 4)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(*pos, "invalid \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| err(*pos, "\\u escape is not a scalar"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "invalid escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &bytes[*pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .map(char::len_utf8)
                        .ok_or_else(|| err(*pos, "invalid UTF-8"))?;
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).expect("checked"));
                    *pos += ch_len;
                }
            }
        }
    }

    fn s_slice(bytes: &[u8], start: usize, len: usize) -> Option<&str> {
        bytes
            .get(start..start + len)
            .and_then(|b| std::str::from_utf8(b).ok())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = s_slice(bytes, start, *pos - start).ok_or_else(|| err(start, "bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(err(start, "expected a value"));
        }
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    // The writer emits unsigned fields as UInt; fold
                    // non-negative integers there so round-trips compare
                    // equal structurally.
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(start, "invalid number"))
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(n) = indent {
            out.push('\n');
            for _ in 0..n * depth {
                out.push(' ');
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn keys_sort_and_escape() {
            let v = Value::obj([
                ("b".to_string(), Value::Int(-2)),
                ("a".to_string(), Value::Str("x\"\n".to_string())),
            ]);
            assert_eq!(v.to_canonical_string(), r#"{"a":"x\"\n","b":-2}"#);
        }

        #[test]
        fn floats_are_deterministic_and_marked() {
            assert_eq!(Value::Float(1.0).to_canonical_string(), "1.0");
            assert_eq!(Value::Float(0.25).to_canonical_string(), "0.25");
            assert_eq!(Value::Float(f64::NAN).to_canonical_string(), "null");
        }

        #[test]
        fn pretty_matches_compact_semantics() {
            let v = Value::Arr(vec![Value::Bool(true), Value::Null]);
            assert_eq!(v.to_canonical_string(), "[true,null]");
            assert_eq!(v.to_pretty_string(2), "[\n  true,\n  null\n]\n");
        }

        #[test]
        fn parse_round_trips_writer_output() {
            let v = Value::obj([
                (
                    "arr".to_string(),
                    Value::Arr(vec![Value::UInt(3), Value::Float(0.5)]),
                ),
                ("neg".to_string(), Value::Int(-7)),
                (
                    "s".to_string(),
                    Value::Str("tab\there \"q\" \\".to_string()),
                ),
                ("t".to_string(), Value::Bool(true)),
                ("z".to_string(), Value::Null),
            ]);
            for text in [v.to_canonical_string(), v.to_pretty_string(2)] {
                assert_eq!(parse(&text).unwrap(), v, "failed on {text}");
            }
        }

        #[test]
        fn parse_accepts_escapes_and_number_forms() {
            assert_eq!(
                parse(r#""A\/\b\f""#).unwrap(),
                Value::Str("A/\u{8}\u{c}".into())
            );
            assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
            assert_eq!(parse("-0.5").unwrap(), Value::Float(-0.5));
            assert_eq!(
                parse("18446744073709551615").unwrap(),
                Value::UInt(u64::MAX)
            );
            assert_eq!(parse("12").unwrap(), Value::UInt(12));
            assert_eq!(parse("-12").unwrap(), Value::Int(-12));
        }

        #[test]
        fn parse_rejects_malformed_input() {
            for bad in [
                "",
                "{",
                "[1,",
                "{\"a\"}",
                "tru",
                "1 2",
                "\"unterminated",
                "nul",
            ] {
                assert!(parse(bad).is_err(), "accepted {bad:?}");
            }
            // Surrounding whitespace is fine; only trailing garbage errors.
            assert_eq!(
                parse("  [1, 2]  ").unwrap(),
                Value::Arr(vec![Value::UInt(1), Value::UInt(2)])
            );
        }
    }
}
