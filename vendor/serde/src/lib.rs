//! Vendored API-subset stand-in for `serde`.
//!
//! The real crate cannot be fetched in this offline build environment. The
//! workspace *derives* `Serialize`/`Deserialize` (as forward-looking
//! annotations), so this shim provides the two marker traits and re-exports
//! the no-op derive macros. Swap back to crates.io `serde` when the build
//! environment has network access (see `vendor/README.md`).
//!
//! Unlike the upstream markers, the shim also ships a small hand-rolled
//! canonical-JSON writer ([`json`]) so harness artifacts (audit findings,
//! bench reports) can be emitted as real, byte-stable JSON without registry
//! access — the ROADMAP's "extend the vendored serde shim to actually
//! serialize" note.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Hand-rolled canonical JSON: a tiny value tree plus a writer that emits
/// byte-stable output (object keys sorted, no insignificant whitespace
/// variation, deterministic float formatting). This is the offline stand-in
/// for `serde_json` limited to what the workspace's artifact writers need.
pub mod json {
    use std::collections::BTreeMap;

    /// A JSON value. Objects use [`BTreeMap`] so key order — and therefore
    /// the serialized byte stream — is canonical by construction.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Signed integer (serialized without a fractional part).
        Int(i64),
        /// Unsigned integer (serialized without a fractional part).
        UInt(u64),
        /// Finite float, formatted with Rust's shortest-roundtrip `Display`.
        /// Non-finite values serialize as `null` (JSON has no NaN/inf).
        Float(f64),
        /// String (escaped per RFC 8259).
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object with canonically (byte-wise) sorted keys.
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Convenience: build an object from key/value pairs.
        pub fn obj<I>(pairs: I) -> Value
        where
            I: IntoIterator<Item = (String, Value)>,
        {
            Value::Obj(pairs.into_iter().collect())
        }

        /// Serializes to the canonical compact form (no newlines, keys
        /// sorted). Byte-identical for equal values, on every platform.
        pub fn to_canonical_string(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, None, 0);
            out
        }

        /// Serializes to a human-readable pretty form with `indent`-space
        /// indentation. Still canonical: keys sorted, floats deterministic.
        pub fn to_pretty_string(&self, indent: usize) -> String {
            let mut out = String::new();
            self.write(&mut out, Some(indent), 0);
            out.push('\n');
            out
        }

        fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Int(i) => out.push_str(&i.to_string()),
                Value::UInt(u) => out.push_str(&u.to_string()),
                Value::Float(f) => {
                    if f.is_finite() {
                        // Shortest-roundtrip Display is deterministic and
                        // re-parses to the same bits.
                        let s = f.to_string();
                        out.push_str(&s);
                        // `1.0` displays as "1" — keep a fractional marker so
                        // consumers see a float-typed field.
                        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                            out.push_str(".0");
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => write_escaped(out, s),
                Value::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent, depth + 1);
                        item.write(out, indent, depth + 1);
                    }
                    if !items.is_empty() {
                        newline_indent(out, indent, depth);
                    }
                    out.push(']');
                }
                Value::Obj(map) => {
                    out.push('{');
                    for (i, (k, v)) in map.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent, depth + 1);
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    }
                    if !map.is_empty() {
                        newline_indent(out, indent, depth);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(n) = indent {
            out.push('\n');
            for _ in 0..n * depth {
                out.push(' ');
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn keys_sort_and_escape() {
            let v = Value::obj([
                ("b".to_string(), Value::Int(-2)),
                ("a".to_string(), Value::Str("x\"\n".to_string())),
            ]);
            assert_eq!(v.to_canonical_string(), r#"{"a":"x\"\n","b":-2}"#);
        }

        #[test]
        fn floats_are_deterministic_and_marked() {
            assert_eq!(Value::Float(1.0).to_canonical_string(), "1.0");
            assert_eq!(Value::Float(0.25).to_canonical_string(), "0.25");
            assert_eq!(Value::Float(f64::NAN).to_canonical_string(), "null");
        }

        #[test]
        fn pretty_matches_compact_semantics() {
            let v = Value::Arr(vec![Value::Bool(true), Value::Null]);
            assert_eq!(v.to_canonical_string(), "[true,null]");
            assert_eq!(v.to_pretty_string(2), "[\n  true,\n  null\n]\n");
        }
    }
}
