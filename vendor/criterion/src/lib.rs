//! Vendored API-subset stand-in for `criterion`.
//!
//! The real crate cannot be fetched in this offline build environment. This
//! shim implements the benchmarking API surface the `lat-bench` benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter` — with a simple
//! time-bounded measurement loop instead of criterion's statistical engine.
//! Reported numbers are mean wall-clock ns/iter, good enough to eyeball
//! regressions; swap back to crates.io `criterion` for real statistics when
//! the build environment has network access (see `vendor/README.md`).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches already use).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Measured mean ns/iter, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, warm-up first, then as many iterations as fit the
    /// measurement window (at least `sample_size`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
        }

        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std_black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 && start.elapsed() >= self.measurement {
                break;
            }
            // Hard cap so accidental sub-nanosecond bodies terminate.
            if iters >= 10_000_000 {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the minimum number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            warm_up: self.effective_warm_up(),
            measurement: self.effective_measurement(),
            sample_size: self.sample_size,
            ns_per_iter: f64::NAN,
            iters: 0,
        };
        f(&mut b);
        self.criterion.record(&full, &b);
        self
    }

    /// Benchmarks `f` with an input value under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report lines are already printed per benchmark).
    pub fn finish(&mut self) {}

    fn effective_warm_up(&self) -> Duration {
        if self.criterion.quick {
            Duration::from_millis(10).min(self.warm_up)
        } else {
            self.warm_up
        }
    }

    fn effective_measurement(&self) -> Duration {
        if self.criterion.quick {
            Duration::from_millis(50).min(self.measurement)
        } else {
            self.measurement
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // LAT_BENCH_QUICK=1 shortens every window for smoke runs (CI).
            quick: std::env::var("LAT_BENCH_QUICK").is_ok_and(|v| v == "1"),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }

    fn record(&mut self, name: &str, b: &Bencher) {
        let per_iter = b.ns_per_iter;
        let human = if per_iter >= 1e9 {
            format!("{:.3} s", per_iter / 1e9)
        } else if per_iter >= 1e6 {
            format!("{:.3} ms", per_iter / 1e6)
        } else if per_iter >= 1e3 {
            format!("{:.3} µs", per_iter / 1e3)
        } else {
            format!("{per_iter:.1} ns")
        };
        println!("{name:<60} time: {human}/iter  ({} iters)", b.iters);
    }
}

/// Declares a benchmark group function (subset: no custom config form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
