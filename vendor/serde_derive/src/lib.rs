//! Vendored no-op stand-in for `serde_derive`.
//!
//! The real crate cannot be fetched in this offline build environment. The
//! workspace only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations — nothing serializes yet — so the derives expand to nothing.
//! Swap back to crates.io `serde` when the build environment has network
//! access (see `vendor/README.md`).

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
