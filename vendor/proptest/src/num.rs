//! Range strategies for primitive numeric types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let span = f64::from(self.end) - f64::from(self.start);
                let v = (f64::from(self.start) + rng.next_f64() * span) as $t;
                // The f64 draw is strictly below `end`, but the narrowing
                // cast rounds to nearest and can land exactly on `end`;
                // keep the bound exclusive.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                let span = f64::from(hi) - f64::from(lo);
                (f64::from(lo) + rng.next_f64() * span) as $t
            }
        }
    )+};
}

float_range_strategy!(f32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding in the multiply/add can land exactly on `end`; keep the
        // bound exclusive.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}
