//! `any::<T>()` for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        // Finite, roughly centered values — the useful subset for numeric
        // property tests (real proptest also generates NaN/infinities).
        ((rng.next_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2e12
    }
}
