//! The `proptest!` test-definition macro and the `prop_assert*` family.

/// Defines property tests. Supports the subset of the real syntax the
/// workspace uses: an optional `#![proptest_config(...)]` inner attribute
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __runner = $crate::test_runner::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            // `run_cases` may fan the case loop across worker threads;
            // each case generates from its own RNG stream and results are
            // reported in case order, so the outcome is identical to the
            // old serial loop.
            __runner.run_cases(|__case| {
                let mut __rng = __runner.rng_for_case(__case);
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal (requires `Debug` on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Asserts two expressions are unequal (requires `Debug` on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
