//! Vendored API-subset stand-in for `proptest`.
//!
//! The real crate cannot be fetched in this offline build environment, so
//! this shim implements the slice of the proptest API the workspace's
//! property tests use, backed by a deterministic SplitMix64 generator:
//!
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//!   `prop_flat_map`, implemented for numeric ranges and tuples;
//! - [`collection::vec`] with exact and ranged sizes;
//! - [`arbitrary::any`] for primitives;
//! - the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros;
//! - [`test_runner::ProptestConfig`] (`with_cases` only).
//!
//! Differences from real proptest: no shrinking (failures report the case
//! index and seed instead of a minimized input) and no persisted failure
//! regressions. Generation is fully deterministic per test name, so every
//! run and every CI machine sees the same inputs. Honors `PROPTEST_SEED`
//! (decimal or `0x`-hex u64) to perturb the base seed. Swap back to
//! crates.io `proptest` when the build environment has network access (see
//! `vendor/README.md`).

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

mod macros;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
