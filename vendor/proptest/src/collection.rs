//! Collection strategies (`vec` only — the subset the workspace uses).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Number of elements a collection strategy may generate.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
