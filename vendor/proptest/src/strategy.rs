//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A generator of random values (API subset of the real trait; no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (retries generation; panics after
    /// 1000 consecutive rejections).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
