//! Deterministic test runner: configuration, RNG, and failure reporting.

use std::fmt;

/// Configuration for a `proptest!` block (API subset of the real crate).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed or rejected property case (carries the formatted message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failure with the given message (mirrors `TestCaseError::fail`).
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: false,
        }
    }

    /// A rejected case (used by `prop_assume!`; treated as a skip).
    pub fn reject(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: true,
        }
    }

    /// Whether this error is an assumption rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rejection {
            write!(f, "rejected: {}", self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 — the same generator `lat-tensor` uses, re-implemented here so
/// the shim stays dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Drives the cases of one property. Seeding is a hash of the test's module
/// path and name (perturbed by `PROPTEST_SEED` when set), so runs are
/// reproducible across machines.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
    name: &'static str,
    rejects: std::cell::Cell<u32>,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                match s.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => s.parse::<u64>().ok(),
                }
            })
            .unwrap_or(0);
        Self {
            config,
            base_seed: fnv1a(name.as_bytes()) ^ env_seed,
            name,
            rejects: std::cell::Cell::new(0),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Independent RNG stream for one case.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::new(
            self.base_seed
                .wrapping_add(0x517C_C1B7_2722_0A95u64.wrapping_mul(u64::from(case) + 1)),
        )
    }

    /// Panics with a reproducible report if `result` is a failure;
    /// `prop_assume!` rejections are counted and checked by [`Self::finish`].
    pub fn report(&self, case: u32, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            if e.is_rejection() {
                self.rejects.set(self.rejects.get() + 1);
                return;
            }
            panic!(
                "proptest property '{}' failed at case {}/{} (base seed {:#x}): {}",
                self.name,
                case + 1,
                self.config.cases,
                self.base_seed,
                e
            );
        }
    }

    /// Called after the case loop: panics if every case was rejected by
    /// `prop_assume!`, so a property whose assumption never holds fails
    /// loudly instead of passing having verified nothing (the shim's
    /// equivalent of real proptest's global reject cap — this runner does
    /// not retry rejected cases).
    pub fn finish(&self) {
        if self.config.cases > 0 && self.rejects.get() == self.config.cases {
            panic!(
                "proptest property '{}' rejected all {} cases (base seed {:#x}) — \
                 the prop_assume! condition never held, nothing was verified",
                self.name, self.config.cases, self.base_seed
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}
