//! Deterministic test runner: configuration, RNG, and failure reporting.
//!
//! The case loop can fan out across scoped worker threads
//! ([`TestRunner::run_cases`]) without changing any observable outcome:
//! each case draws from its own independent RNG stream
//! ([`TestRunner::rng_for_case`]), and results are reported on the
//! calling thread in strict case order, so worker count never affects
//! which case fails first, the failure message, or the rejection count.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Environment knob for the number of case-loop worker threads. Unset:
/// the host's available parallelism. Must parse as a positive integer.
pub const WORKERS_ENV: &str = "PROPTEST_WORKERS";

/// Configuration for a `proptest!` block (API subset of the real crate).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed or rejected property case (carries the formatted message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failure with the given message (mirrors `TestCaseError::fail`).
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: false,
        }
    }

    /// A rejected case (used by `prop_assume!`; treated as a skip).
    pub fn reject(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: true,
        }
    }

    /// Whether this error is an assumption rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rejection {
            write!(f, "rejected: {}", self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 — the same generator `lat-tensor` uses, re-implemented here so
/// the shim stays dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Drives the cases of one property. Seeding is a hash of the test's module
/// path and name (perturbed by `PROPTEST_SEED` when set), so runs are
/// reproducible across machines.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
    name: &'static str,
    // Atomic (not Cell) so the runner is `Sync` and workers can borrow it;
    // in practice only the serial report pass on the calling thread
    // touches it.
    rejects: AtomicU32,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                match s.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => s.parse::<u64>().ok(),
                }
            })
            .unwrap_or(0);
        Self {
            config,
            base_seed: fnv1a(name.as_bytes()) ^ env_seed,
            name,
            rejects: AtomicU32::new(0),
        }
    }

    /// Runs every case of the property: `f(case)` generates inputs from
    /// [`Self::rng_for_case`] and executes the body, fanned across scoped
    /// worker threads ([`WORKERS_ENV`]; serial when 1). Results are then
    /// reported on the calling thread in strict case order and
    /// [`Self::finish`] is applied — the exact behavior of the old serial
    /// loop, whatever the worker count.
    pub fn run_cases<F>(&self, f: F)
    where
        F: Fn(u32) -> Result<(), TestCaseError> + Sync,
    {
        self.run_cases_with(workers_from_env(), &f);
    }

    fn run_cases_with<F>(&self, workers: usize, f: &F)
    where
        F: Fn(u32) -> Result<(), TestCaseError> + Sync,
    {
        let cases = self.config.cases;
        let results: Vec<Result<(), TestCaseError>> = if workers <= 1 || cases <= 1 {
            (0..cases).map(f).collect()
        } else {
            // Same discipline as the workspace pool: an atomic cursor
            // hands out case indices, workers keep (index, result) pairs
            // local, and the calling thread scatters them back into
            // index-ordered slots — no channels, no arrival-order state.
            let next = AtomicU32::new(0);
            let mut slots: Vec<Option<Result<(), TestCaseError>>> = Vec::new();
            slots.resize_with(cases as usize, || None);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers.min(cases as usize))
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let case = next.fetch_add(1, Ordering::Relaxed);
                                if case >= cases {
                                    break;
                                }
                                local.push((case, f(case)));
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    let local = handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                    for (case, result) in local {
                        slots[case as usize] = Some(result);
                    }
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every case executed exactly once"))
                .collect()
        };
        for (case, result) in results.into_iter().enumerate() {
            self.report(case as u32, result);
        }
        self.finish();
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Independent RNG stream for one case.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::new(
            self.base_seed
                .wrapping_add(0x517C_C1B7_2722_0A95u64.wrapping_mul(u64::from(case) + 1)),
        )
    }

    /// Panics with a reproducible report if `result` is a failure;
    /// `prop_assume!` rejections are counted and checked by [`Self::finish`].
    pub fn report(&self, case: u32, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            if e.is_rejection() {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            panic!(
                "proptest property '{}' failed at case {}/{} (base seed {:#x}): {}",
                self.name,
                case + 1,
                self.config.cases,
                self.base_seed,
                e
            );
        }
    }

    /// Called after the case loop: panics if every case was rejected by
    /// `prop_assume!`, so a property whose assumption never holds fails
    /// loudly instead of passing having verified nothing (the shim's
    /// equivalent of real proptest's global reject cap — this runner does
    /// not retry rejected cases).
    pub fn finish(&self) {
        if self.config.cases > 0 && self.rejects.load(Ordering::Relaxed) == self.config.cases {
            panic!(
                "proptest property '{}' rejected all {} cases (base seed {:#x}) — \
                 the prop_assume! condition never held, nothing was verified",
                self.name, self.config.cases, self.base_seed
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

fn workers_from_env() -> usize {
    match std::env::var(WORKERS_ENV) {
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("{WORKERS_ENV} must be a positive integer, got {raw:?}")),
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner(cases: u32) -> TestRunner {
        TestRunner::new(ProptestConfig::with_cases(cases), "runner::probe")
    }

    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    /// The per-case RNG draw, recorded at (case, draw) so ordering and
    /// stream independence are both visible.
    fn draws(r: &TestRunner, workers: usize) -> Vec<(u32, u64)> {
        let log = std::sync::Mutex::new(Vec::new());
        r.run_cases_with(workers, &|case| {
            let v = r.rng_for_case(case).next_u64();
            log.lock().expect("log").push((case, v));
            Ok(())
        });
        let mut out = log.into_inner().expect("log");
        out.sort_unstable();
        out
    }

    #[test]
    fn worker_count_never_changes_case_streams() {
        let r = runner(97);
        let serial = draws(&r, 1);
        for workers in [2usize, 3, 4, 8] {
            assert_eq!(draws(&r, workers), serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn parallel_failure_reports_the_first_failing_case() {
        // Cases 5 and 11 fail; whatever order workers finish in, the
        // serial report pass must name case 6 (1-based) first.
        let r = runner(16);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.run_cases_with(4, &|case| {
                if case == 5 || case == 11 {
                    Err(TestCaseError::fail("boom"))
                } else {
                    Ok(())
                }
            });
        }))
        .expect_err("a failing case must panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("case 6/16"), "wrong case reported: {msg}");
    }

    #[test]
    fn parallel_all_rejected_still_fails_loudly() {
        let r = runner(12);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.run_cases_with(3, &|_| Err(TestCaseError::reject("never holds")));
        }))
        .expect_err("all-rejected must panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("rejected all 12"), "wrong message: {msg}");
    }

    #[test]
    fn worker_panic_propagates_payload() {
        let r = runner(8);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.run_cases_with(2, &|case| {
                assert!(case != 3, "raw body panic");
                Ok(())
            });
        }))
        .expect_err("body panic must propagate");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("raw body panic"), "payload lost: {msg}");
    }
}
